"""Navigators: event sources with optional skipping capabilities.

The streaming evaluator is written against the small :class:`Navigator`
protocol.  A navigator yields ``(kind, value, meta)`` triples; for open
events ``meta`` may carry the Skip-index information of Section 4 (the
set of descendant tags and the encoded subtree size).  Navigators that
``supports_skip`` can reposition the stream:

* :meth:`Navigator.skip_subtree` — right after an open event, jump so
  that the next event is the matching close (the paper's subtree skip);
* :meth:`Navigator.skip_and_capture` — same, but return a callback that
  re-reads the skipped subtree later (pending-part read-back,
  Section 5);
* :meth:`Navigator.skip_rest_and_capture` — right after a close event,
  jump to the *parent's* close, optionally capturing the remaining
  children (the paper triggers the skipping decision "both on open and
  close events").

:class:`EventListNavigator` adapts an in-memory event list and can
compute the meta information exactly — it behaves like a perfect Skip
index without the binary encoding, which lets the evaluator's skipping
logic be tested in isolation.  The encoded-document navigator lives in
:mod:`repro.skipindex.decoder`; the encrypted one in
:mod:`repro.soe.session`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.metrics import Meter
from repro.xmlkit.events import CLOSE, OPEN, Event

FetchCallback = Callable[[], Sequence[Event]]


class SubtreeMeta:
    """Skip-index metadata attached to an open event.

    ``desc_tags`` is the set of tags occurring *strictly below* the
    element (the paper's ``DescTag``); ``size`` is the encoded byte size
    of the subtree (what a skip saves).
    """

    __slots__ = ("desc_tags", "size")

    def __init__(self, desc_tags: Optional[frozenset], size: Optional[int] = None):
        self.desc_tags = desc_tags
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SubtreeMeta(%d tags, size=%r)" % (
            -1 if self.desc_tags is None else len(self.desc_tags),
            self.size,
        )


class Navigator:
    """Protocol base class; concrete navigators override everything."""

    __slots__ = ()

    def next(self) -> Optional[Tuple[int, str, Optional[SubtreeMeta]]]:
        """Return the next ``(kind, value, meta)`` or ``None`` at EOF."""
        raise NotImplementedError

    def supports_skip(self) -> bool:
        return False

    def supports_capture(self) -> bool:
        return False

    def skip_subtree(self) -> None:
        raise NotImplementedError("navigator does not support skipping")

    def skip_and_capture(self) -> FetchCallback:
        raise NotImplementedError("navigator does not support capture")

    def skip_rest(self) -> bool:
        """Skip remaining children of the enclosing element; next event
        becomes its close.  Returns False when there was nothing to
        skip."""
        raise NotImplementedError("navigator does not support skipping")

    def skip_rest_and_capture(self) -> Optional[FetchCallback]:
        """Like :meth:`skip_rest` but capturing the skipped events;
        returns ``None`` when there was nothing to skip."""
        raise NotImplementedError("navigator does not support capture")


class SimpleEventNavigator(Navigator):
    """Minimal navigator over an event iterable — no skipping, no meta.

    Models the Brute-Force setting (no index): the evaluator must see
    every event.
    """

    __slots__ = ("_iterator",)

    def __init__(self, events):
        self._iterator = iter(events)

    def next(self):
        for event in self._iterator:
            return (event[0], event[1], None)
        return None


class EventListNavigator(Navigator):
    """Navigator over a materialized event list with exact metadata.

    Pre-computes, in one pass, the matching-close index and the strict
    descendant-tag set for every open event, so it can serve Skip-index
    metadata and perform constant-time skips.  ``provide_meta=False``
    degrades it to a skip-capable navigator without metadata (the
    evaluator then cannot filter tokens, only skip on global decisions).
    """

    __slots__ = (
        "events",
        "provide_meta",
        "meter",
        "_pos",
        "_open_stack",
        "_close_index",
        "_desc_tags",
        "_subtree_events",
    )

    def __init__(
        self,
        events: Sequence[Event],
        provide_meta: bool = True,
        meter: Optional[Meter] = None,
    ):
        self.events = list(events)
        self.provide_meta = provide_meta
        self.meter = meter
        self._pos = 0
        self._open_stack: List[int] = []  # indices of currently open elements
        self._close_index: dict = {}
        self._desc_tags: dict = {}
        self._subtree_events: dict = {}
        self._analyze()

    def _analyze(self) -> None:
        stack: List[Tuple[int, set, int]] = []  # (open index, tag set, events)
        for index, event in enumerate(self.events):
            kind = event[0]
            if kind == OPEN:
                stack.append((index, set(), 0))
            elif kind == CLOSE:
                open_index, tags, _count = stack.pop()
                self._close_index[open_index] = index
                self._desc_tags[open_index] = frozenset(tags)
                self._subtree_events[open_index] = index - open_index + 1
                if stack:
                    parent_tags = stack[-1][1]
                    parent_tags |= tags
                    parent_tags.add(event[1])
        if stack:
            raise ValueError("unbalanced event list")

    # ------------------------------------------------------------------
    def next(self):
        if self._pos >= len(self.events):
            return None
        index = self._pos
        event = self.events[index]
        self._pos += 1
        kind = event[0]
        meta = None
        if kind == OPEN:
            self._open_stack.append(index)
            if self.provide_meta:
                meta = SubtreeMeta(
                    self._desc_tags[index], self._subtree_events[index]
                )
        elif kind == CLOSE:
            if self._open_stack:
                self._open_stack.pop()
        return (kind, event[1], meta)

    def supports_skip(self) -> bool:
        return True

    def supports_capture(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def _current_open_index(self) -> int:
        if not self._open_stack:
            raise RuntimeError("skip_subtree outside an element")
        return self._open_stack[-1]

    def skip_subtree(self) -> None:
        open_index = self._current_open_index()
        close_index = self._close_index[open_index]
        if self.meter is not None:
            self.meter.skipped_bytes += self._span_bytes(self._pos, close_index)
        self._pos = close_index  # next event is the matching close

    def skip_and_capture(self) -> FetchCallback:
        open_index = self._current_open_index()
        close_index = self._close_index[open_index]
        events = self.events
        meter = self.meter
        span = (open_index, close_index + 1)

        def fetch() -> Sequence[Event]:
            if meter is not None:
                meter.readback_events += span[1] - span[0]
            return events[span[0] : span[1]]

        if meter is not None:
            meter.skipped_bytes += self._span_bytes(self._pos, close_index)
        self._pos = close_index
        return fetch

    def skip_rest(self) -> bool:
        open_index = self._current_open_index()
        close_index = self._close_index[open_index]
        if self._pos >= close_index:
            return False
        if self.meter is not None:
            self.meter.skipped_bytes += self._span_bytes(self._pos, close_index)
        self._pos = close_index
        return True

    def skip_rest_and_capture(self) -> Optional[FetchCallback]:
        open_index = self._current_open_index()
        close_index = self._close_index[open_index]
        if self._pos >= close_index:
            return None
        events = self.events
        meter = self.meter
        span = (self._pos, close_index)

        def fetch() -> Sequence[Event]:
            if meter is not None:
                meter.readback_events += span[1] - span[0]
            return events[span[0] : span[1]]

        if meter is not None:
            meter.skipped_bytes += self._span_bytes(self._pos, close_index)
        self._pos = close_index
        return fetch

    # ------------------------------------------------------------------
    def _span_bytes(self, start: int, end: int) -> int:
        """Rough byte estimate of a skipped span (for metering only)."""
        total = 0
        for event in self.events[start:end]:
            total += len(event[1]) + 2
        return total
