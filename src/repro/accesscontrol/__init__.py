"""The paper's primary contribution: streaming XML access control.

Modules:

* :mod:`repro.accesscontrol.model` — access rules ``<sign, subject,
  object>``, access-control policies, decisions (Section 2);
* :mod:`repro.accesscontrol.conditions` — three-valued conditions over
  *predicate instances*, the backbone of pending-predicate management;
* :mod:`repro.accesscontrol.tokens` — navigational/predicate tokens and
  the Token Stack (Section 3.1);
* :mod:`repro.accesscontrol.authorization` — the Authorization Stack and
  the ``DecideNode`` conflict-resolution algorithm (Section 3.2, Fig. 4);
* :mod:`repro.accesscontrol.evaluator` — the streaming evaluator with
  ``DecideSubtree``/``SkipSubtree`` optimizations (Sections 3.3, 4.2);
* :mod:`repro.accesscontrol.pending` — the pending-result builder and
  reassembly (Section 5);
* :mod:`repro.accesscontrol.reference` — a non-streaming DOM oracle used
  for differential testing;
* :mod:`repro.accesscontrol.optimizer` — static policy minimization via
  containment (Section 3.3).
"""

from repro.accesscontrol.model import (
    DENY,
    PENDING,
    PERMIT,
    AccessRule,
    Policy,
    negative,
    positive,
)
from repro.accesscontrol.evaluator import StreamingEvaluator, evaluate_events
from repro.accesscontrol.reference import reference_authorized_view

__all__ = [
    "PERMIT",
    "DENY",
    "PENDING",
    "AccessRule",
    "Policy",
    "positive",
    "negative",
    "StreamingEvaluator",
    "evaluate_events",
    "reference_authorized_view",
]
