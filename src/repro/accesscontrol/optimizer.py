"""Static policy minimization via containment (Section 3.3).

The paper sketches how query-containment can shrink a system of rules
before evaluation, notes that the problem is coNP-complete for
``XP{[],*,//}`` and leaves the general case open.  We implement the
*provably safe* fragment of that idea:

1. **Duplicate elimination** — identical ``(sign, object)`` pairs are
   redundant regardless of anything else;
2. **Same-sign containment** — a rule ``S`` with ``scope(S) ⊆
   scope(R)`` and ``sign(S) = sign(R)`` is redundant *provided no
   opposite-sign rule exists in the policy*: with only one sign in
   play, conflict resolution degenerates to set union of scopes.

When opposite signs are present, the paper's own elimination condition
(the ``{T} ⊆ {S} ⊆ {R}`` sandwich) is *sufficient but not necessary*
only under assumptions about stack nesting that the homomorphism test
cannot certify; :func:`optimize_policy` therefore keeps those rules
unless ``aggressive=True`` is passed (useful for experiments; the
differential tests exercise it to characterize when it is safe).

Containment uses :func:`repro.xpath.containment.covers` — sound and
incomplete — so the optimizer can only miss eliminations, never break
the policy semantics (in the safe modes).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.accesscontrol.model import AccessRule, Policy
from repro.xpath.containment import scope_covers


def deduplicate(rules: List[AccessRule]) -> List[AccessRule]:
    """Drop rules with identical sign and object (keep first)."""
    seen = set()
    kept: List[AccessRule] = []
    for rule in rules:
        key = (rule.sign, rule.object)
        if key not in seen:
            seen.add(key)
            kept.append(rule)
    return kept


def redundant_same_sign(rules: List[AccessRule]) -> List[Tuple[int, int]]:
    """Pairs ``(i, j)`` with ``rules[j]`` contained in same-sign
    ``rules[i]`` (j redundant candidates)."""
    pairs: List[Tuple[int, int]] = []
    for i, general in enumerate(rules):
        for j, specific in enumerate(rules):
            if i == j or general.sign != specific.sign:
                continue
            if scope_covers(general.object, specific.object):
                pairs.append((i, j))
    return pairs


def optimize_policy(policy: Policy, aggressive: bool = False) -> Policy:
    """Return an equivalent policy with redundant rules removed.

    Safe by construction unless ``aggressive`` is set (which applies
    the paper's sandwich condition even across signs).
    """
    rules = deduplicate(list(policy.rules))
    single_signed = (
        all(rule.is_positive for rule in rules)
        or all(rule.is_negative for rule in rules)
    )
    if single_signed or aggressive:
        rules = _eliminate_contained(rules, aggressive=aggressive)
    return Policy(rules, subject=policy.subject, dummy_tag=policy.dummy_tag)


def _eliminate_contained(
    rules: List[AccessRule], aggressive: bool
) -> List[AccessRule]:
    removed = set()
    for i, general in enumerate(rules):
        if i in removed:
            continue
        for j, specific in enumerate(rules):
            if j == i or j in removed or general.sign != specific.sign:
                continue
            if not scope_covers(general.object, specific.object):
                continue
            if aggressive and not _sandwich_safe(rules, i, j, removed):
                continue
            removed.add(j)
    return [rule for index, rule in enumerate(rules) if index not in removed]


def _sandwich_safe(
    rules: List[AccessRule], general: int, specific: int, removed: set
) -> bool:
    """The paper's condition: eliminating S (specific, contained in R)
    is precluded when an opposite-sign rule T is contained in R and
    contains S — T could re-flip the sign between R and S."""
    r = rules[general]
    s = rules[specific]
    del s
    for index, t in enumerate(rules):
        if index in removed or t.sign == r.sign:
            continue
        # Elimination is only attempted when every opposite-sign rule
        # provably contains R (it can then never be *more* specific
        # than R or S inside their scopes without also covering them).
        # Anything weaker — including mere potential overlap, which the
        # homomorphism test cannot rule out — precludes elimination.
        if not scope_covers(t.object, r.object):
            return False
    return True
