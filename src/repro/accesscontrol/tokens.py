"""Tokens and the Token Stack (Section 3.1).

The navigation progress of all Access Rule Automata is memorized in a
unique stack-based structure, the *Token Stack*: the top of the stack
contains all tokens that can trigger a transition at the next incoming
event; a frame is pushed at each open event and popped at each close
event, giving backtracking for free.

We distinguish *navigational tokens* (:class:`NavToken`) and *predicate
tokens* (:class:`PredToken`).  Token proxies are labelled with the
predicate instances created along their path — the paper's "rule
instance" materialization that keeps unrelated ``//`` matches apart.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.accesscontrol.conditions import PredicateInstance
from repro.xpath.ast import Comparison
from repro.xpath.nfa import PredicateSpec


class NavToken:
    """A token progressing along a navigational path.

    ``preds`` are the predicate instances spawned on the way; a rule
    instance built from this token is active only when all of them are
    satisfied.
    """

    __slots__ = ("automaton_index", "state_id", "preds")

    def __init__(
        self,
        automaton_index: int,
        state_id: int,
        preds: Tuple[PredicateInstance, ...] = (),
    ):
        self.automaton_index = automaton_index
        self.state_id = state_id
        self.preds = preds

    def key(self) -> tuple:
        return (
            self.automaton_index,
            self.state_id,
            tuple(id(p) for p in self.preds),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NavToken(a%d,s%d,%d preds)" % (
            self.automaton_index,
            self.state_id,
            len(self.preds),
        )


class PredToken:
    """A token progressing along a predicate chain.

    ``instance`` is the predicate instance this token works for;
    ``preds`` are *nested* predicate instances spawned inside the chain.
    """

    __slots__ = ("automaton_index", "spec", "state_id", "instance", "preds")

    def __init__(
        self,
        automaton_index: int,
        spec: PredicateSpec,
        state_id: int,
        instance: PredicateInstance,
        preds: Tuple[PredicateInstance, ...] = (),
    ):
        self.automaton_index = automaton_index
        self.spec = spec
        self.state_id = state_id
        self.instance = instance
        self.preds = preds

    def key(self) -> tuple:
        return (
            self.automaton_index,
            self.spec.spec_id,
            self.state_id,
            id(self.instance),
            tuple(id(p) for p in self.preds),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PredToken(a%d,spec%d,s%d)" % (
            self.automaton_index,
            self.spec.spec_id,
            self.state_id,
        )


class TextListener:
    """A predicate-final token awaiting the element's text content.

    Created when a predicate chain ends with a comparison: the predicate
    token reached the final state on the element's open event, but the
    comparison can only be checked against the element's text, collected
    until its close event.  ``needs_access`` marks query predicates,
    whose witnesses must belong to the authorized view (Section 2).
    """

    __slots__ = ("instance", "comparison", "preds", "needs_access")

    def __init__(
        self,
        instance: PredicateInstance,
        comparison: Comparison,
        preds: Tuple[PredicateInstance, ...],
        needs_access: bool,
    ):
        self.instance = instance
        self.comparison = comparison
        self.preds = preds
        self.needs_access = needs_access


class Frame:
    """One Token Stack level: the tokens active below one open element."""

    __slots__ = (
        "tag",
        "nav",
        "pred",
        "_nav_keys",
        "_pred_keys",
        "listeners",
        "text_parts",
        "access_condition",
    )

    def __init__(self, tag: str):
        self.tag = tag
        self.nav: List[NavToken] = []
        self.pred: List[PredToken] = []
        self._nav_keys: set = set()
        self._pred_keys: set = set()
        self.listeners: List[TextListener] = []
        self.text_parts: List[str] = []
        self.access_condition = None  # set by the evaluator at open time

    def add_nav(self, token: NavToken) -> bool:
        """Add a navigational token; returns False on duplicates."""
        key = token.key()
        if key in self._nav_keys:
            return False
        self._nav_keys.add(key)
        self.nav.append(token)
        return True

    def add_pred(self, token: PredToken) -> bool:
        """Add a predicate token; returns False on duplicates."""
        key = token.key()
        if key in self._pred_keys:
            return False
        self._pred_keys.add(key)
        self.pred.append(token)
        return True

    def remove_tokens(self, keep: Callable[[object], bool]) -> int:
        """Filter tokens in place (Skip-index filtering); returns the
        number of discarded tokens."""
        before = len(self.nav) + len(self.pred)
        self.nav = [t for t in self.nav if keep(t)]
        self.pred = [t for t in self.pred if keep(t)]
        self._nav_keys = {t.key() for t in self.nav}
        self._pred_keys = {t.key() for t in self.pred}
        return before - (len(self.nav) + len(self.pred))

    def is_empty(self) -> bool:
        """No live tokens and no pending text listeners."""
        return not self.nav and not self.pred and not self.listeners

    def token_count(self) -> int:
        return len(self.nav) + len(self.pred)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Frame(%r, %d nav, %d pred)" % (self.tag, len(self.nav), len(self.pred))


class TokenStack:
    """The Token Stack: a list of :class:`Frame`, one per open element,
    plus the bottom frame holding the initial tokens."""

    __slots__ = ("frames", "peak_depth", "peak_tokens")

    def __init__(self):
        root = Frame("")
        self.frames: List[Frame] = [root]
        self.peak_depth = 1
        self.peak_tokens = 0

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def push(self, frame: Frame) -> None:
        self.frames.append(frame)
        if len(self.frames) > self.peak_depth:
            self.peak_depth = len(self.frames)
        count = frame.token_count()
        if count > self.peak_tokens:
            self.peak_tokens = count

    def pop(self) -> Frame:
        if len(self.frames) <= 1:
            raise IndexError("cannot pop the initial Token Stack frame")
        return self.frames.pop()

    def depth(self) -> int:
        """Document depth = number of open elements."""
        return len(self.frames) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TokenStack(depth=%d)" % self.depth()
