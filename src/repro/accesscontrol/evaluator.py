"""The streaming access-control evaluator (Sections 3–5).

:class:`StreamingEvaluator` consumes open/value/close events from a
:class:`~repro.accesscontrol.navigation.Navigator` and produces the
authorized view of the document — optionally intersected with a query —
without ever materializing the document.

Per event it maintains:

* the **Token Stack** (:mod:`repro.accesscontrol.tokens`): the active
  navigational and predicate tokens of every Access Rule Automaton;
* the **Authorization Stack**
  (:mod:`repro.accesscontrol.authorization`): the rule instances whose
  scope covers the current node, feeding ``DecideNode``;
* the **predicate windows**: instances anchored at a depth expire when
  that depth closes (the paper's Predicate Set discipline);
* the **result builder** (:mod:`repro.accesscontrol.pending`): the
  condition-annotated output with pending parts and deferred subtrees.

When the navigator exposes Skip-index metadata, the evaluator applies
the three optimizations of Sections 3.3/4.2:

1. *token filtering* — tokens whose ``RemainingLabels`` are not all
   present in the subtree are discarded;
2. *subtree decisions* (``DecideSubtree``) — with an empty top frame the
   node's decision extends to its whole subtree;
3. *subtree skips* (``SkipSubtree``) — denied or irrelevant subtrees are
   skipped outright; pending ones are skipped and captured for read-back
   (Section 5); authorized ones can be bulk-copied without evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.accesscontrol.authorization import AuthorizationStack
from repro.accesscontrol.conditions import (
    ALWAYS,
    FALSE,
    NEVER,
    TRUE,
    UNKNOWN,
    Condition,
    PredicateInstance,
    RuleInstance,
    and_condition,
    or_condition,
)
from repro.accesscontrol.model import AccessRule, Policy
from repro.accesscontrol.navigation import (
    EventListNavigator,
    Navigator,
    SimpleEventNavigator,
)
from repro.accesscontrol.pending import ResultBuilder
from repro.accesscontrol.tokens import (
    Frame,
    NavToken,
    PredToken,
    TextListener,
    TokenStack,
)
from repro.metrics import Meter
from repro.xmlkit.events import OPEN, TEXT, Event
from repro.xpath.ast import Path
from repro.xpath.nfa import Automaton


class _QueryStack:
    """Scope registry for query instances (coverage, not authorization).

    A node is *covered* by the query iff some query instance whose scope
    includes the node is (or becomes) active — an OR over instances, in
    contrast with the access stack's conflict resolution.
    """

    __slots__ = ("levels", "_version", "_cache")

    def __init__(self):
        self.levels: List[List[RuleInstance]] = [[]]
        self._version = 0
        self._cache: Optional[Tuple[int, Condition]] = None

    def open_level(self, depth: int) -> None:
        while len(self.levels) <= depth:
            self.levels.append([])

    def push(self, depth: int, instance: RuleInstance) -> None:
        self.open_level(depth)
        self.levels[depth].append(instance)
        self._version += 1

    def close_level(self, depth: int) -> None:
        if depth < len(self.levels):
            if any(self.levels[d] for d in range(depth, len(self.levels))):
                self._version += 1
            del self.levels[depth:]

    def coverage_condition(self) -> Condition:
        cache = self._cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        instances = [
            instance for level in self.levels[1:] for instance in level
        ]
        condition = or_condition(instances)
        self._cache = (self._version, condition)
        return condition


class StreamingEvaluator:
    """Evaluate an access-control policy (and optional query) on a
    streaming document.

    Parameters
    ----------
    policy:
        The subject's :class:`~repro.accesscontrol.model.Policy`, or a
        precompiled :class:`~repro.engine.plans.PolicyPlan` — the plan
        path skips all XPath parsing and automaton compilation, which
        is how the engine layer amortizes provisioning cost across
        documents and requests.
    query:
        Optional ``XP{[],*,//}`` expression (string, parsed
        :class:`~repro.xpath.ast.Path`, or precompiled
        :class:`~repro.engine.plans.QueryPlan`); the result is then the
        query evaluated over the authorized view.
    meter:
        Optional :class:`~repro.metrics.Meter` accumulating work counts.
    enable_skipping:
        Apply token filtering and subtree skips when the navigator
        supports them (the TCSBR setting).  Disabled, the evaluator
        processes every event (the Brute-Force setting).
    enable_subtree_copy:
        Also bulk-copy fully authorized subtrees without evaluating
        their events (an optimization the skip sizes make possible).
    enable_pruning:
        Skip-pruned replay (the station's hot path): before any token
        work, a subtree whose tag set is disjoint from the plan's (and
        query's) *trigger labels* is decided wholesale from the current
        stacks — skipped, bulk-copied or deferred — because no automaton
        transition can fire at or below it.  Off by default so the
        paper-figure benches keep their exact cold-path cost accounting.
    """

    __slots__ = (
        "plan",
        "policy",
        "meter",
        "enable_skipping",
        "enable_subtree_copy",
        "enable_pruning",
        "automata",
        "rules",
        "query_index",
        "_prune_labels",
        "tokens",
        "auth",
        "qstack",
        "result",
        "windows",
        "depth",
        "_navigator",
        "_outstanding",
    )

    def __init__(
        self,
        policy: Union[Policy, "PolicyPlan"],
        query: Union[str, Path, "QueryPlan", None] = None,
        meter: Optional[Meter] = None,
        enable_skipping: bool = True,
        enable_subtree_copy: bool = True,
        enable_pruning: bool = False,
    ):
        # Imported lazily: the engine layer sits above this module.
        from repro.engine.plans import PolicyPlan, compile_policy

        plan = policy if isinstance(policy, PolicyPlan) else compile_policy(policy)
        self.plan = plan
        self.policy = policy = plan.policy
        self.meter = meter if meter is not None else Meter()
        self.enable_skipping = enable_skipping
        self.enable_subtree_copy = enable_subtree_copy
        self.enable_pruning = enable_pruning
        self.automata: List[Automaton] = list(plan.automata)
        self.rules: List[AccessRule] = list(plan.rules)
        self.query_index: Optional[int] = None
        prune_labels = plan.trigger_labels
        if query is not None:
            query_plan = plan.query_plan(query)
            self.query_index = len(self.automata)
            self.automata.append(query_plan.automaton)
            self.rules.append(AccessRule("+", query_plan.path, "QUERY"))
            if prune_labels is not None:
                query_trigger = query_plan.trigger_labels
                prune_labels = (
                    None
                    if query_trigger is None
                    else prune_labels | query_trigger
                )
        # None either means pruning is disabled or that a wildcard step
        # makes every label a trigger; both fall back to the cold path.
        self._prune_labels = (
            prune_labels if (enable_pruning and enable_skipping) else None
        )
        # Run state (reset per run) ------------------------------------
        self.tokens = TokenStack()
        self.auth = AuthorizationStack()
        self.qstack = _QueryStack()
        self.result = ResultBuilder(dummy_tag=policy.dummy_tag)
        self.windows: Dict[int, List[PredicateInstance]] = {}
        self.depth = 0
        self._navigator: Optional[Navigator] = None
        self._outstanding: List[object] = []  # undecided deferred subtrees

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, navigator: Navigator) -> List[Event]:
        """Process the whole document; return the authorized view."""
        self._reset(navigator)
        # Hot loop: bind the dispatch targets once — attribute lookups
        # per event are measurable on million-event documents.
        navigator_next = navigator.next
        on_open = self._on_open
        on_text = self._on_text
        on_close = self._on_close
        while True:
            item = navigator_next()
            if item is None:
                break
            kind, value, meta = item
            if kind == OPEN:
                on_open(value, meta)
            elif kind == TEXT:
                on_text(value)
            else:
                on_close()
        return self.result.finalize()

    def run_events(
        self, events: Sequence[Event], with_index: bool = False
    ) -> List[Event]:
        """Convenience wrapper: evaluate an in-memory event stream.

        ``with_index=True`` serves exact Skip-index metadata (and
        enables skipping); otherwise the evaluator sees a bare stream.
        """
        if with_index:
            navigator: Navigator = EventListNavigator(
                events, provide_meta=True, meter=self.meter
            )
        else:
            navigator = SimpleEventNavigator(events)
        return self.run(navigator)

    # ------------------------------------------------------------------
    def _reset(self, navigator: Navigator) -> None:
        self.tokens = TokenStack()
        self.auth = AuthorizationStack()
        self.qstack = _QueryStack()
        self.result = ResultBuilder(dummy_tag=self.policy.dummy_tag)
        self.windows = {}
        self.depth = 0
        self._navigator = navigator
        self._outstanding = []
        bottom = self.tokens.top
        for index, automaton in enumerate(self.automata):
            bottom.add_nav(NavToken(index, automaton.initial, ()))

    def _is_query(self, automaton_index: int) -> bool:
        return automaton_index == self.query_index

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_open(self, tag: str, meta) -> None:
        meter = self.meter
        meter.events += 1
        prune_labels = self._prune_labels
        if (
            prune_labels is not None
            and meta is not None
            and meta.desc_tags is not None
            and tag not in prune_labels
            and prune_labels.isdisjoint(meta.desc_tags)
        ):
            navigator = self._navigator
            if (
                navigator is not None
                and navigator.supports_skip()
                and self._prune_subtree(tag, navigator)
            ):
                return
        self.depth += 1
        depth = self.depth
        self.auth.open_level(depth)
        if self.query_index is not None:
            self.qstack.open_level(depth)
        top = self.tokens.top
        frame = Frame(tag)
        automata = self.automata
        witnesses: List[Tuple[PredicateInstance, tuple, bool]] = []
        for token in top.nav:
            automaton = automata[token.automaton_index]
            state = automaton.states[token.state_id]
            if state.self_loop:
                frame.add_nav(token)
            for target in state.targets(tag):
                self._enter_nav(token, automaton, target, depth, frame, witnesses)
        for token in top.pred:
            if token.instance.settled_true():
                continue  # predicate already true in this subtree: suspend
            automaton = automata[token.automaton_index]
            state = automaton.states[token.state_id]
            if state.self_loop:
                frame.add_pred(token)
            for target in state.targets(tag):
                self._enter_pred(token, automaton, target, depth, frame, witnesses)
        self.tokens.push(frame)

        access_condition = self._access_condition()
        frame.access_condition = access_condition
        if self.query_index is not None:
            node_condition = and_condition(
                [access_condition, self.qstack.coverage_condition()]
            )
        else:
            node_condition = access_condition
        for instance, preds, needs_access in witnesses:
            parts: List[Condition] = list(preds)
            if needs_access:
                parts.append(access_condition)
            instance.add_witness(and_condition(parts))

        navigator = self._navigator
        if self.enable_skipping and meta is not None and meta.desc_tags is not None:
            desc_tags = meta.desc_tags
            killed = frame.remove_tokens(
                lambda token: self._remaining_labels(token) <= desc_tags
            )
            meter.killed_tokens += killed

        state = node_condition.state()
        meter.decisions += 1
        if (
            self.enable_skipping
            and navigator is not None
            and navigator.supports_skip()
            and frame.is_empty()
        ):
            if state == FALSE:
                self.result.open(tag, NEVER)
                navigator.skip_subtree()
                meter.skipped_subtrees += 1
                return
            if state == UNKNOWN and navigator.supports_capture():
                fetch = navigator.skip_and_capture()
                deferred = self.result.add_deferred(node_condition, fetch)
                if deferred is not None:
                    self._outstanding.append(deferred)
                self.result.open(tag, NEVER)  # placeholder paired with the close
                meter.deferred_subtrees += 1
                return
            if (
                state == TRUE
                and self.enable_subtree_copy
                and navigator.supports_capture()
            ):
                # Authorized subtree: copy it without evaluation.  Fetch
                # eagerly — the enclosing chunk is still in the SOE
                # cache, so the bytes are transferred exactly once.
                events = list(navigator.skip_and_capture()())
                self.result.add_deferred(ALWAYS, lambda: events)
                self.result.open(tag, NEVER)
                return
        self.result.open(tag, node_condition)
        if state == UNKNOWN:
            meter.pending_nodes += 1

    def _prune_subtree(self, tag: str, navigator: Navigator) -> bool:
        """Skip-pruned replay (the station's hot path).

        Called for an open event whose tag and descendant-tag set are
        disjoint from every automaton's trigger labels: no transition
        can fire at or below this node, so no rule/predicate instance,
        witness or text listener can be created inside, and every node
        in the subtree shares the delivery condition readable from the
        current stacks.  The whole subtree is therefore decided in one
        step — skipped (denied), bulk-copied (authorized) or deferred
        (pending) — without any token machinery.  Returns False when
        the decision cannot be realized on this navigator (the caller
        then falls back to the cold path, with no side effects done).
        """
        access_condition = self._access_condition()
        if self.query_index is not None:
            node_condition = and_condition(
                [access_condition, self.qstack.coverage_condition()]
            )
        else:
            node_condition = access_condition
        state = node_condition.state()
        if state == FALSE:
            mode = 0  # skip outright
        elif not navigator.supports_capture():
            return False
        elif state == UNKNOWN:
            mode = 1  # defer
        elif self.enable_subtree_copy:
            mode = 2  # authorized bulk copy
        else:
            return False
        self.depth += 1
        depth = self.depth
        self.auth.open_level(depth)
        if self.query_index is not None:
            self.qstack.open_level(depth)
        frame = Frame(tag)
        frame.access_condition = access_condition
        self.tokens.push(frame)
        meter = self.meter
        meter.decisions += 1
        meter.pruned_subtrees += 1
        if mode == 0:
            self.result.open(tag, NEVER)
            navigator.skip_subtree()
            meter.skipped_subtrees += 1
            return True
        if mode == 1:
            fetch = navigator.skip_and_capture()
            deferred = self.result.add_deferred(node_condition, fetch)
            if deferred is not None:
                self._outstanding.append(deferred)
            self.result.open(tag, NEVER)  # placeholder paired with the close
            meter.deferred_subtrees += 1
            return True
        # Authorized subtree: copy it without evaluation (fetch eagerly,
        # the enclosing chunk is still in the SOE cache).
        events = list(navigator.skip_and_capture()())
        self.result.add_deferred(ALWAYS, lambda: events)
        self.result.open(tag, NEVER)
        return True

    def _on_text(self, value: str) -> None:
        self.meter.events += 1
        frame = self.tokens.top
        if frame.listeners:
            frame.text_parts.append(value)
        if value:
            self.result.text(value)

    def _on_close(self) -> None:
        meter = self.meter
        meter.events += 1
        depth = self.depth
        frame = self.tokens.top
        if frame.listeners:
            text = "".join(frame.text_parts)
            for listener in frame.listeners:
                if listener.instance.settled_true():
                    continue
                if listener.comparison.matches(text):
                    parts: List[Condition] = list(listener.preds)
                    if listener.needs_access:
                        parts.append(frame.access_condition)
                    listener.instance.add_witness(and_condition(parts))
        self.auth.close_level(depth)
        if self.query_index is not None:
            self.qstack.close_level(depth)
        for instance in self.windows.pop(depth, ()):
            instance.close_window()
        self.tokens.pop()
        self.result.close()
        self.depth -= 1
        if self._outstanding:
            self._resolve_outstanding()
        self._maybe_skip_rest()


    def _resolve_outstanding(self) -> None:
        """Externalize pending subtrees as soon as their delivery
        condition is decided (Section 5): fetching while the enclosing
        chunk is likely still in the SOE cache avoids re-paying chunk
        transfer and verification at reassembly time."""
        undecided = []
        for deferred in self._outstanding:
            state = deferred.condition.state()
            if state == UNKNOWN:
                undecided.append(deferred)
            elif state == TRUE:
                events = list(deferred.fetch())
                deferred.fetch = lambda events=events: events
            # FALSE: nothing to fetch; the renderer drops it.
        self._outstanding = undecided

    def _maybe_skip_rest(self) -> None:
        """Close-time skipping: after a child closed, the rest of the
        parent's content may have become skippable (the paper triggers
        the skipping decision on close events too)."""
        navigator = self._navigator
        if (
            not self.enable_skipping
            or navigator is None
            or not navigator.supports_skip()
            or self.depth < 1
        ):
            return
        frame = self.tokens.top
        if not frame.is_empty():
            return
        condition = self.result.current_condition()
        state = condition.state()
        if state == FALSE:
            if navigator.skip_rest():
                self.meter.skipped_subtrees += 1
        elif navigator.supports_capture():
            if state == UNKNOWN:
                fetch = navigator.skip_rest_and_capture()
                if fetch is not None:
                    deferred = self.result.add_deferred(condition, fetch)
                    if deferred is not None:
                        self._outstanding.append(deferred)
                    self.meter.deferred_subtrees += 1
            elif state == TRUE and self.enable_subtree_copy:
                fetch = navigator.skip_rest_and_capture()
                if fetch is not None:
                    events = list(fetch())  # eager: chunk still cached
                    self.result.add_deferred(ALWAYS, lambda: events)

    # ------------------------------------------------------------------
    # Token machinery
    # ------------------------------------------------------------------
    def _enter_nav(
        self,
        token: NavToken,
        automaton: Automaton,
        target_id: int,
        depth: int,
        frame: Frame,
        witnesses: List[tuple],
    ) -> None:
        self.meter.token_ops += 1
        target = automaton.states[target_id]
        preds = token.preds
        if target.anchors:
            extended = list(preds)
            for spec in target.anchors:
                instance = self._new_instance(token.automaton_index, spec, depth)
                self._spawn_pred(token.automaton_index, spec, instance, frame)
                extended.append(instance)
            preds = tuple(extended)
        if target_id == automaton.nav_final:
            rule = self.rules[token.automaton_index]
            instance = RuleInstance(rule, preds, depth)
            if self._is_query(token.automaton_index):
                self.qstack.push(depth, instance)
            else:
                self.auth.push(depth, instance)
                self.meter.auth_pushes += 1
        else:
            frame.add_nav(NavToken(token.automaton_index, target_id, preds))

    def _enter_pred(
        self,
        token: PredToken,
        automaton: Automaton,
        target_id: int,
        depth: int,
        frame: Frame,
        witnesses: List[tuple],
    ) -> None:
        self.meter.token_ops += 1
        target = automaton.states[target_id]
        preds = token.preds
        if target.anchors:
            extended = list(preds)
            for spec in target.anchors:
                instance = self._new_instance(token.automaton_index, spec, depth)
                self._spawn_pred(token.automaton_index, spec, instance, frame)
                extended.append(instance)
            preds = tuple(extended)
        if target_id == token.spec.final:
            needs_access = self._is_query(token.automaton_index)
            if token.spec.comparison is None:
                witnesses.append((token.instance, preds, needs_access))
            else:
                frame.listeners.append(
                    TextListener(
                        token.instance, token.spec.comparison, preds, needs_access
                    )
                )
        else:
            frame.add_pred(
                PredToken(
                    token.automaton_index, token.spec, target_id, token.instance, preds
                )
            )

    def _new_instance(
        self, automaton_index: int, spec, depth: int
    ) -> PredicateInstance:
        rule = self.rules[automaton_index]
        instance = PredicateInstance(
            rule.name or str(automaton_index), spec.spec_id, depth
        )
        self.windows.setdefault(depth, []).append(instance)
        return instance

    def _spawn_pred(
        self,
        automaton_index: int,
        spec,
        instance: PredicateInstance,
        frame: Frame,
    ) -> None:
        if spec.start == spec.final:
            # `[. op lit]`: the anchor element itself is the witness.
            if spec.comparison is None:
                instance.mark_satisfied()
            else:
                frame.listeners.append(
                    TextListener(
                        instance,
                        spec.comparison,
                        (),
                        self._is_query(automaton_index),
                    )
                )
        else:
            frame.add_pred(
                PredToken(automaton_index, spec, spec.start, instance, ())
            )

    def _remaining_labels(self, token) -> frozenset:
        automaton = self.automata[token.automaton_index]
        return automaton.states[token.state_id].remaining_labels

    # ------------------------------------------------------------------
    def _access_condition(self) -> Condition:
        decision = self.auth.current_decision()
        if decision == TRUE:
            return ALWAYS
        if decision == FALSE:
            return NEVER
        return self.auth.snapshot()


def evaluate_events(
    events: Sequence[Event],
    policy: Union[Policy, "PolicyPlan"],
    query: Union[str, Path, None] = None,
    with_index: bool = True,
    meter: Optional[Meter] = None,
) -> List[Event]:
    """One-shot helper: authorized view of an in-memory event stream.

    ``policy`` may be a :class:`~repro.engine.plans.PolicyPlan` to reuse
    a compilation across calls.

    >>> from repro.xmlkit import parse_document
    >>> from repro.accesscontrol.model import make_policy
    >>> doc = parse_document("<a><b>x</b><c>y</c></a>")
    >>> policy = make_policy([("+", "//b")])
    >>> view = evaluate_events(list(doc.iter_events()), policy)
    """
    evaluator = StreamingEvaluator(policy, query=query, meter=meter)
    return evaluator.run_events(events, with_index=with_index)
