"""Pending-part buffering and result reassembly (Section 5).

An element is *pending* when its delivery depends on a pending rule.
The paper detects pending elements/subtrees, leaves them aside (in the
terminal's memory — the SOE cannot buffer them) and reassembles the
relevant parts at the right place in the final result, preserving
parent/sibling relationships via anchors in a Pending Stack.

Our realization keeps the same contract with a simpler bookkeeping: the
result is built as a condition-annotated tree held by the (untrusted)
terminal.  Every node carries the delivery :class:`Condition` computed
by the evaluator at its open event; text is attached to its element;
whole *skipped pending subtrees* are represented by a
:class:`DeferredSubtree` carrying a fetch callback (Section 5's "read
back from the terminal") so their bytes are decrypted only if the
condition resolves to true — never read and analyzed twice.  Positions
are inherently preserved because deferred items sit at their original
rank among the parent's children: the paper's anchor arithmetic
collapses to list order.

Reassembly (:meth:`ResultBuilder.finalize`) renders the tree once every
condition is decided, applying the *Structural* rule: a node appears if
its own condition is true or if any descendant appears (a denied node's
tag may then be replaced by a dummy value).

For streaming consumers, :meth:`ResultBuilder.drain_ready` emits the
maximal decided prefix of the result while parsing is in progress —
the paper's low-latency asynchronous delivery.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.accesscontrol.conditions import (
    ALWAYS,
    FALSE,
    TRUE,
    UNKNOWN,
    Condition,
)
from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event

FetchCallback = Callable[[], Sequence[Event]]


class DeferredSubtree:
    """A skipped pending subtree: delivered wholesale iff ``condition``
    resolves true, fetched (read back and decrypted) only then."""

    __slots__ = ("condition", "fetch")

    def __init__(self, condition: Condition, fetch: FetchCallback):
        self.condition = condition
        self.fetch = fetch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DeferredSubtree(%r)" % (self.condition,)


class ResultNode:
    """A node of the condition-annotated result tree."""

    __slots__ = ("tag", "condition", "children", "flushed", "open_emitted")

    def __init__(self, tag: str, condition: Condition):
        self.tag = tag
        self.condition = condition
        self.children: List[Union["ResultNode", str, DeferredSubtree]] = []
        self.flushed = 0  # children already emitted by drain_ready
        self.open_emitted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ResultNode(%r, %d children)" % (self.tag, len(self.children))


class ResultBuilder:
    """Builds the authorized view while the evaluator parses.

    The evaluator drives it with :meth:`open`, :meth:`text`,
    :meth:`add_deferred` and :meth:`close`; once the document ends,
    :meth:`finalize` returns the (rest of the) authorized view as a list
    of events.
    """

    __slots__ = ("dummy_tag", "_root", "_stack", "_finalized")

    def __init__(self, dummy_tag: Optional[str] = None):
        self.dummy_tag = dummy_tag
        self._root = ResultNode("", ALWAYS)  # virtual super-root
        self._root.open_emitted = True
        self._stack: List[ResultNode] = [self._root]
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction interface (called by the evaluator)
    # ------------------------------------------------------------------
    def open(self, tag: str, condition: Condition) -> ResultNode:
        """Enter an element whose delivery condition is ``condition``."""
        node = ResultNode(tag, condition)
        self._stack[-1].children.append(node)
        self._stack.append(node)
        return node

    def text(self, value: str) -> None:
        """Text content of the current element (delivered with it)."""
        node = self._stack[-1]
        if node.condition.state() != FALSE:
            node.children.append(value)

    def add_deferred(
        self, condition: Condition, fetch: FetchCallback
    ) -> Optional[DeferredSubtree]:
        """Register a skipped pending subtree at the current position.

        Returns the deferred item (or ``None`` when the condition is
        already false) so the evaluator can resolve it eagerly — the
        paper externalizes pending subtrees "at the time the logical
        expression conditioning their delivery is evaluated to true".
        """
        if condition.state() == FALSE:
            return None
        deferred = DeferredSubtree(condition, fetch)
        self._stack[-1].children.append(deferred)
        return deferred

    def close(self) -> None:
        """Leave the current element."""
        if len(self._stack) <= 1:
            raise IndexError("close without open in ResultBuilder")
        self._stack.pop()

    def current_condition(self) -> Condition:
        """Delivery condition of the innermost open element (the virtual
        root's ALWAYS when no element is open)."""
        return self._stack[-1].condition

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def finalize(self) -> List[Event]:
        """Render whatever was not already drained; the document must be
        fully parsed (every condition decided, every element closed)."""
        if len(self._stack) != 1:
            raise ValueError("finalize() before all elements were closed")
        out: List[Event] = []
        done = self._drain(self._root, out, final=True)
        if not done:  # pragma: no cover - _drain(final=True) raises instead
            raise ValueError("finalize() left undecided parts")
        self._finalized = True
        return out

    def drain_ready(self) -> List[Event]:
        """Emit the maximal decided prefix of the result so far; emitted
        parts are dropped from the buffer (freeing terminal memory)."""
        out: List[Event] = []
        self._drain(self._root, out, final=False)
        return out

    # ------------------------------------------------------------------
    def _drain(self, node: ResultNode, out: List[Event], final: bool) -> bool:
        """Emit ``node``'s pending output; return True when the node is
        completely finished (including its close tag)."""
        children = node.children
        while node.flushed < len(children):
            child = children[node.flushed]
            if isinstance(child, str):
                # Text is only buffered under nodes not decided FALSE;
                # it is emitted only when the node itself is delivered,
                # and drained-into nodes always have a TRUE condition.
                out.append(Event(TEXT, child))
                children[node.flushed] = ""
                node.flushed += 1
                continue
            if isinstance(child, DeferredSubtree):
                state = child.condition.state()
                if state == UNKNOWN:
                    if final:
                        raise ValueError("undecided deferred subtree at finalize")
                    return False
                if state == TRUE:
                    out.extend(child.fetch())
                children[node.flushed] = ""
                node.flushed += 1
                continue
            # ResultNode child --------------------------------------------------
            if child.open_emitted:
                if not self._drain(child, out, final):
                    return False
                node.flushed += 1
                continue
            still_open = self._is_open(child)
            state = child.condition.state()
            if state == UNKNOWN:
                if final:
                    raise ValueError("undecided condition for %r" % child.tag)
                return False
            if still_open:
                if state != TRUE:
                    # Structural delivery cannot be anticipated while the
                    # element is still collecting children.
                    return False
                out.append(Event(OPEN, child.tag))
                child.open_emitted = True
                self._drain(child, out, final)
                return False  # an open element is never finished
            # Fully closed subtree: render if every condition inside is
            # decided, otherwise stop (or fail when finalizing).
            if not final and not self._subtree_decided(child):
                return False
            self._render(child, out)
            children[node.flushed] = ""
            node.flushed += 1
        if node is self._root:
            return True
        if self._is_open(node):
            return False
        if node.open_emitted:
            out.append(Event(CLOSE, node.tag))
            node.open_emitted = False
        return True

    def _is_open(self, node: ResultNode) -> bool:
        for frame in self._stack:
            if frame is node:
                return True
        return False

    def _subtree_decided(self, node: ResultNode) -> bool:
        if node.condition.state() == UNKNOWN:
            return False
        for child in node.children:
            if isinstance(child, ResultNode):
                if not self._subtree_decided(child):
                    return False
            elif isinstance(child, DeferredSubtree):
                if child.condition.state() == UNKNOWN:
                    return False
        return True

    def _render(self, node: ResultNode, out: List[Event]) -> bool:
        """Render a fully decided, fully closed subtree.  Returns True if
        anything was emitted (used for the Structural rule)."""
        state = node.condition.state()
        if state == UNKNOWN:
            raise ValueError("undecided condition for element %r" % node.tag)
        own = state == TRUE
        child_events: List[Event] = []
        any_child = False
        for child in node.children:
            if isinstance(child, str):
                if own and child:
                    child_events.append(Event(TEXT, child))
            elif isinstance(child, ResultNode):
                if self._render(child, child_events):
                    any_child = True
            elif isinstance(child, DeferredSubtree):
                child_state = child.condition.state()
                if child_state == UNKNOWN:
                    raise ValueError("undecided deferred subtree")
                if child_state == TRUE:
                    child_events.extend(child.fetch())
                    any_child = True
        if own:
            out.append(Event(OPEN, node.tag))
            out.extend(child_events)
            out.append(Event(CLOSE, node.tag))
            return True
        if any_child:
            # Structural rule: the path to a granted node is granted too.
            tag = self.dummy_tag if self.dummy_tag is not None else node.tag
            out.append(Event(OPEN, tag))
            out.extend(child_events)
            out.append(Event(CLOSE, tag))
            return True
        return False
