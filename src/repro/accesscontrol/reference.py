"""Non-streaming reference evaluator (testing oracle).

This module implements the access-control model of Section 2 *directly*
on a materialized DOM: each rule's XPath is matched against the tree,
per-node decisions are computed by explicit conflict resolution along
the root path, queries are matched against the authorized view, and the
result is rendered with the Structural rule.

It is deliberately simple and slow — a specification in code.  The
streaming evaluator is differential-tested against it on randomized
documents and policies; any divergence is a bug in one of the two.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.accesscontrol.model import DENY, PERMIT, Policy
from repro.xmlkit.dom import Node
from repro.xmlkit.events import CLOSE, OPEN, TEXT, Event
from repro.xpath.ast import AXIS_CHILD, Path, Predicate, Step
from repro.xpath.parser import parse_xpath

WitnessFilter = Optional[Callable[[Node], bool]]


class _DocumentRoot(Node):
    """Virtual node above the document root (the XPath document node)."""

    def __init__(self, root: Node):
        super().__init__("", [root])


def match_path(
    root: Node, path: Path, witness_filter: WitnessFilter = None
) -> Set[Node]:
    """Nodes of ``root``'s tree matched by the absolute ``path``.

    ``witness_filter``, when given, restricts *predicate witnesses* to
    accepted nodes — used to evaluate query predicates against the
    authorized view ("predicates cannot be expressed on denied
    elements", Section 2).
    """
    contexts: Set[Node] = {_DocumentRoot(root)}
    return _eval_steps(contexts, path.steps, witness_filter)


def _eval_steps(
    contexts: Set[Node],
    steps: Sequence[Step],
    witness_filter: WitnessFilter,
) -> Set[Node]:
    current = contexts
    for step in steps:
        gathered: Set[Node] = set()
        if step.is_self():
            gathered = set(current)
        elif step.axis == AXIS_CHILD:
            for context in current:
                for child in context.element_children():
                    if step.matches_tag(child.tag):
                        gathered.add(child)
        else:  # descendant axis
            for context in current:
                for descendant in context.descendants():
                    if descendant is context:
                        continue
                    if step.matches_tag(descendant.tag):
                        gathered.add(descendant)
        if step.predicates:
            gathered = {
                node
                for node in gathered
                if all(
                    _eval_predicate(node, predicate, witness_filter)
                    for predicate in step.predicates
                )
            }
        current = gathered
        if not current:
            break
    return current


def _eval_predicate(
    node: Node, predicate: Predicate, witness_filter: WitnessFilter
) -> bool:
    witnesses = _eval_steps({node}, predicate.path.steps, witness_filter)
    if witness_filter is not None:
        witnesses = {
            w
            for w in witnesses
            if isinstance(w, _DocumentRoot) or witness_filter(w)
        }
    if predicate.comparison is None:
        return bool(witnesses)
    comparison = predicate.comparison
    return any(comparison.matches(witness.text()) for witness in witnesses)


def access_decisions(root: Node, policy: Policy) -> Dict[int, int]:
    """Per-node PERMIT/DENY decision (by ``id(node)``) for the tree.

    Implements the closed policy, rule propagation, Denial-Takes-
    Precedence and Most-Specific-Object-Takes-Precedence.
    """
    matches: List[Set[Node]] = [
        match_path(root, rule.object) for rule in policy.rules
    ]
    decisions: Dict[int, int] = {}

    def visit(node: Node, inherited: int) -> None:
        positive_here = False
        negative_here = False
        for rule, matched in zip(policy.rules, matches):
            if node in matched:
                if rule.is_negative:
                    negative_here = True
                else:
                    positive_here = True
        if negative_here:
            decision = DENY  # denial takes precedence at the same object
        elif positive_here:
            decision = PERMIT
        else:
            decision = inherited  # most specific object takes precedence
        decisions[id(node)] = decision
        for child in node.element_children():
            visit(child, decision)

    visit(root, DENY)  # closed policy: the default is deny
    return decisions


def query_coverage(
    root: Node,
    query: Path,
    decisions: Dict[int, int],
) -> Set[int]:
    """Ids of nodes inside some query match's subtree.

    Query predicates are evaluated against the authorized view: only
    PERMIT nodes can serve as witnesses.
    """

    def witness_ok(node: Node) -> bool:
        return decisions.get(id(node), DENY) == PERMIT

    matched = match_path(root, query, witness_filter=witness_ok)
    covered: Set[int] = set()
    for match in matched:
        for descendant in match.descendants():
            covered.add(id(descendant))
    return covered


def reference_authorized_view(
    root: Node,
    policy: Policy,
    query: Union[str, Path, None] = None,
) -> List[Event]:
    """The authorized view (optionally intersected with ``query``) as an
    event stream — the specification the streaming evaluator must meet.
    """
    decisions = access_decisions(root, policy)
    covered: Optional[Set[int]] = None
    if query is not None:
        query_path = parse_xpath(query) if isinstance(query, str) else query
        query_path = query_path.bind_user(policy.subject)
        covered = query_coverage(root, query_path, decisions)

    def delivered(node: Node) -> bool:
        if decisions[id(node)] != PERMIT:
            return False
        if covered is not None and id(node) not in covered:
            return False
        return True

    def render(node: Node, out: List[Event]) -> bool:
        own = delivered(node)
        child_events: List[Event] = []
        any_child = False
        for child in node.children:
            if isinstance(child, str):
                if own and child:
                    child_events.append(Event(TEXT, child))
            else:
                if render(child, child_events):
                    any_child = True
        if own:
            out.append(Event(OPEN, node.tag))
            out.extend(child_events)
            out.append(Event(CLOSE, node.tag))
            return True
        if any_child:
            # Structural rule: the path to a granted node is granted too.
            tag = policy.dummy_tag if policy.dummy_tag is not None else node.tag
            out.append(Event(OPEN, tag))
            out.extend(child_events)
            out.append(Event(CLOSE, tag))
            return True
        return False

    events: List[Event] = []
    render(root, events)
    return events
