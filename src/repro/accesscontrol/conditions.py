"""Three-valued conditions over predicate instances.

Pending-predicate management (Section 5) hinges on delivery *conditions*:
"condition is the logical expression conditioning the delivery of the
element/subtree".  We realize conditions as a small three-valued
(true / false / unknown) expression algebra whose atoms are *predicate
instances*:

* a :class:`PredicateInstance` is created when a navigational token
  enters a state anchoring a predicate chain, at a given document depth
  (the *rule instance* discipline of Section 3.1);
* it becomes **true** when some witness element completes the predicate
  chain (and its comparison holds).  A witness may itself carry a
  residual condition (nested predicates, or — for queries — the access
  decision of the witness, since query predicates are evaluated against
  the *authorized view*);
* it becomes **false** when its *window* (the subtree of the anchor
  element) closes with no true witness.

Because every window closes by end of document, every condition is
decided once parsing completes — which is what guarantees that all
pending parts are eventually delivered or discarded.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.accesscontrol.model import DENY, PENDING, PERMIT

TRUE = PERMIT
FALSE = DENY
UNKNOWN = PENDING


class Condition:
    """Base class: anything exposing a three-valued ``state()``."""

    __slots__ = ()

    def state(self) -> int:
        raise NotImplementedError

    def decided(self) -> bool:
        return self.state() != UNKNOWN


class ConstCondition(Condition):
    """A constant condition (already-decided nodes)."""

    __slots__ = ("_state",)

    def __init__(self, state: int):
        self._state = state

    def state(self) -> int:
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Const(%d)" % self._state


ALWAYS = ConstCondition(TRUE)
NEVER = ConstCondition(FALSE)


class PredicateInstance(Condition):
    """One runtime instance of a predicate chain, anchored at ``depth``.

    The instance collects *witnesses*: conditions attached by predicate
    tokens reaching the chain's final state.  A plain (unconditional)
    witness satisfies the instance immediately — the paper's
    optimization of dropping further evaluation of a satisfied predicate
    in its subtree (Fig. 3.c, step 3) keys off :meth:`settled_true`.
    """

    __slots__ = ("rule_key", "spec_id", "depth", "_satisfied", "_closed", "_witnesses")

    def __init__(self, rule_key: str, spec_id: int, depth: int):
        self.rule_key = rule_key
        self.spec_id = spec_id
        self.depth = depth
        self._satisfied = False
        self._closed = False
        self._witnesses: List[Condition] = []

    # ------------------------------------------------------------------
    def mark_satisfied(self) -> None:
        """Record an unconditional witness."""
        self._satisfied = True
        self._witnesses = []

    def add_witness(self, condition: Condition) -> None:
        """Record a conditional witness (nested predicates / query view)."""
        if self._satisfied:
            return
        state = condition.state()
        if state == TRUE:
            self.mark_satisfied()
        elif state != FALSE:
            self._witnesses.append(condition)

    def close_window(self) -> None:
        """The anchor element's subtree ended; no further witnesses."""
        self._closed = True

    # ------------------------------------------------------------------
    def settled_true(self) -> bool:
        """True as soon as an unconditional witness arrived (used to
        suspend predicate tokens of this instance)."""
        return self._satisfied

    def state(self) -> int:
        if self._satisfied:
            return TRUE
        pending = False
        for witness in self._witnesses:
            witness_state = witness.state()
            if witness_state == TRUE:
                self._satisfied = True
                return TRUE
            if witness_state == UNKNOWN:
                pending = True
        if pending:
            return UNKNOWN
        return FALSE if self._closed else UNKNOWN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PredInst(%s#%d@%d,%s)" % (
            self.rule_key,
            self.spec_id,
            self.depth,
            {TRUE: "T", FALSE: "F", UNKNOWN: "?"}[self.state()],
        )


class AndCondition(Condition):
    """Conjunction; true iff all parts true, false if any part false."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Condition]):
        self.parts: Tuple[Condition, ...] = tuple(parts)

    def state(self) -> int:
        pending = False
        for part in self.parts:
            part_state = part.state()
            if part_state == FALSE:
                return FALSE
            if part_state == UNKNOWN:
                pending = True
        return UNKNOWN if pending else TRUE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "And(%r)" % (list(self.parts),)


class OrCondition(Condition):
    """Disjunction; true if any part true, false iff all parts false."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Condition]):
        self.parts: Tuple[Condition, ...] = tuple(parts)

    def state(self) -> int:
        pending = False
        for part in self.parts:
            part_state = part.state()
            if part_state == TRUE:
                return TRUE
            if part_state == UNKNOWN:
                pending = True
        return UNKNOWN if pending else FALSE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Or(%r)" % (list(self.parts),)


def and_condition(parts: Iterable[Condition]) -> Condition:
    """Build a conjunction, collapsing trivial cases."""
    remaining: List[Condition] = []
    for part in parts:
        state = part.state()
        if state == FALSE:
            return NEVER
        if state == TRUE:
            continue
        remaining.append(part)
    if not remaining:
        return ALWAYS
    if len(remaining) == 1:
        return remaining[0]
    return AndCondition(remaining)


def or_condition(parts: Iterable[Condition]) -> Condition:
    """Build a disjunction, collapsing trivial cases."""
    remaining: List[Condition] = []
    for part in parts:
        state = part.state()
        if state == TRUE:
            return ALWAYS
        if state == FALSE:
            continue
        remaining.append(part)
    if not remaining:
        return NEVER
    if len(remaining) == 1:
        return remaining[0]
    return OrCondition(remaining)


class RuleInstance(Condition):
    """One runtime instance of an access rule's scope.

    Created when a navigational token reaches the rule's navigational
    final state; ``preds`` are the predicate instances the token
    accumulated along its path.  The instance is *active* (true) when
    all of them are satisfied, *dead* (false) when any is definitely
    false, *pending* otherwise.
    """

    __slots__ = ("rule", "preds", "depth")

    def __init__(self, rule, preds: Tuple[PredicateInstance, ...], depth: int):
        self.rule = rule
        self.preds = preds
        self.depth = depth

    def state(self) -> int:
        pending = False
        for pred in self.preds:
            pred_state = pred.state()
            if pred_state == FALSE:
                return FALSE
            if pred_state == UNKNOWN:
                pending = True
        return UNKNOWN if pending else TRUE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RuleInst(%r@%d,%s)" % (
            self.rule,
            self.depth,
            {TRUE: "T", FALSE: "F", UNKNOWN: "?"}[self.state()],
        )
