"""Access-control model: rules, policies and decisions (Section 2).

An access rule is a 3-uple ``<sign, subject, object>`` where the object
is an ``XP{[],*,//}`` expression.  Rules propagate to all descendants of
their objects; conflicts are resolved by *Denial-Takes-Precedence* and
*Most-Specific-Object-Takes-Precedence*; the default policy is closed
(no access).  The *Structural* rule keeps ancestor paths of granted
nodes in the view.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath

#: Three-valued delivery decisions.  ``PENDING`` means the outcome
#: depends on predicates not yet resolved (Section 5).
PERMIT = 1
DENY = 0
PENDING = 2

DECISION_NAMES = {PERMIT: "permit", DENY: "deny", PENDING: "pending"}

SIGN_POSITIVE = "+"
SIGN_NEGATIVE = "-"


class AccessRule:
    """One access rule ``<sign, subject, object>``.

    ``object`` may be given as an XPath string or a pre-parsed
    :class:`~repro.xpath.ast.Path`.  ``subject`` is free-form (a user or
    role name); it is only used to bind the ``USER`` variable inside
    comparison predicates when the rule is attached to a policy.
    """

    __slots__ = ("sign", "object", "name")

    def __init__(
        self,
        sign: str,
        obj: Union[str, Path],
        name: Optional[str] = None,
    ):
        if sign not in (SIGN_POSITIVE, SIGN_NEGATIVE):
            raise ValueError("sign must be '+' or '-', got %r" % sign)
        self.sign = sign
        self.object = parse_xpath(obj) if isinstance(obj, str) else obj
        self.name = name or ""

    @property
    def is_positive(self) -> bool:
        return self.sign == SIGN_POSITIVE

    @property
    def is_negative(self) -> bool:
        return self.sign == SIGN_NEGATIVE

    def bind_user(self, user: str) -> "AccessRule":
        """Substitute the ``USER`` variable inside predicates."""
        return AccessRule(self.sign, self.object.bind_user(user), self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessRule):
            return NotImplemented
        return self.sign == other.sign and self.object == other.object

    def __hash__(self) -> int:
        return hash((self.sign, self.object))

    def __repr__(self) -> str:
        label = "%s: " % self.name if self.name else ""
        return "<%s%s, %s>" % (label, self.sign, self.object)


def positive(obj: Union[str, Path], name: Optional[str] = None) -> AccessRule:
    """Shorthand for a permission rule."""
    return AccessRule(SIGN_POSITIVE, obj, name)


def negative(obj: Union[str, Path], name: Optional[str] = None) -> AccessRule:
    """Shorthand for a prohibition rule."""
    return AccessRule(SIGN_NEGATIVE, obj, name)


class Policy:
    """The set of rules attached to one subject on one document.

    The policy is *closed*: anything not explicitly granted is denied.
    ``dummy_tag`` controls the Structural rule's rendering of denied
    ancestors of granted nodes: ``None`` keeps the original tag names,
    a string replaces them ("names of denied elements in this path can
    be replaced by a dummy value", Section 2).
    """

    def __init__(
        self,
        rules: Sequence[AccessRule],
        subject: str = "",
        dummy_tag: Optional[str] = None,
    ):
        self.subject = subject
        self.dummy_tag = dummy_tag
        self.rules: Tuple[AccessRule, ...] = tuple(
            rule.bind_user(subject) for rule in rules
        )

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def positive_rules(self) -> List[AccessRule]:
        return [rule for rule in self.rules if rule.is_positive]

    def negative_rules(self) -> List[AccessRule]:
        return [rule for rule in self.rules if rule.is_negative]

    def required_labels(self) -> frozenset:
        """Union of labels any rule needs — useful for quick dataset
        relevance checks."""
        labels = set()
        for rule in self.rules:
            labels |= rule.object.required_labels()
        return frozenset(labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Policy(%s, %d rules)" % (self.subject or "<anonymous>", len(self.rules))


def make_policy(
    rule_specs: Iterable[Tuple[str, str]],
    subject: str = "",
    dummy_tag: Optional[str] = None,
) -> Policy:
    """Build a policy from ``(sign, xpath)`` pairs.

    >>> policy = make_policy([("+", "//Admin"), ("-", "//Admin/SSN")])
    >>> len(policy)
    2
    """
    rules = [AccessRule(sign, obj) for sign, obj in rule_specs]
    return Policy(rules, subject=subject, dummy_tag=dummy_tag)
