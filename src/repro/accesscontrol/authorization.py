"""Authorization Stack and conflict resolution (Section 3.2, Fig. 4).

The Authorization Stack registers, per document depth, the rule
instances whose navigational final state was reached at that depth: the
instance's scope covers the element and its whole subtree, bounded by
the time the entry remains on the stack.

``decide`` implements the conflict-resolution algorithm reconstructed in
DESIGN.md Section 4: the bottom of the stack holds an implicit
negative-active rule (closed policy); within a level *Denial Takes
Precedence*; across levels *Most Specific Object Takes Precedence*.  The
algorithm is *stable*: it returns ``PERMIT``/``DENY`` only when the
outcome cannot change whichever way pending predicates resolve, and
``PENDING`` otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.accesscontrol.conditions import (
    FALSE,
    TRUE,
    UNKNOWN,
    Condition,
    RuleInstance,
)
from repro.accesscontrol.model import DENY, PENDING, PERMIT


def combine_level(below: int, statuses: Sequence[Tuple[bool, int]]) -> int:
    """Combine the decision from lower levels with one level's statuses.

    ``statuses`` is a list of ``(is_positive, state)`` pairs where state
    is the rule instance's three-valued activity (TRUE = active,
    UNKNOWN = pending, FALSE = dead/ignored).
    """
    has_pos_active = False
    has_pos_pending = False
    has_neg_pending = False
    for is_positive, state in statuses:
        if state == FALSE:
            continue  # dead instance: the rule never applied here
        if is_positive:
            if state == TRUE:
                has_pos_active = True
            else:
                has_pos_pending = True
        else:
            if state == TRUE:
                return DENY  # negative-active: denial takes precedence
            has_neg_pending = True
    if has_neg_pending:
        if has_pos_active or has_pos_pending:
            return PENDING  # conflict at the most specific level
        return DENY if below == DENY else PENDING
    if has_pos_active:
        return PERMIT
    if has_pos_pending:
        return PERMIT if below == PERMIT else PENDING
    return below


def decide(levels: Sequence[Sequence[RuleInstance]]) -> int:
    """Run conflict resolution bottom-up over stack ``levels``.

    ``levels[0]`` is the outermost (least specific) level.  The closed
    policy supplies the implicit DENY below ``levels[0]``.
    """
    decision = DENY
    for level in levels:
        if not level:
            continue
        statuses = [
            (instance.rule.is_positive, instance.state()) for instance in level
        ]
        decision = combine_level(decision, statuses)
    return decision


class AccessSnapshot(Condition):
    """A frozen view of the Authorization Stack for one document node.

    The entry sets per level are fixed at node-open time (no rule
    instance covering the node can be pushed later); only the three-
    valued states of the referenced instances evolve, monotonically from
    UNKNOWN to TRUE/FALSE.  Once :meth:`state` returns PERMIT or DENY the
    answer is final (see :func:`combine_level`), so the snapshot caches
    decided outcomes.
    """

    __slots__ = ("levels", "_decided")

    def __init__(self, levels: Tuple[Tuple[RuleInstance, ...], ...]):
        self.levels = levels
        self._decided: Optional[int] = None

    def state(self) -> int:
        if self._decided is not None:
            return self._decided
        decision = decide(self.levels)
        if decision != PENDING:
            self._decided = decision
            return decision
        return UNKNOWN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AccessSnapshot(%d levels)" % len(self.levels)


class AuthorizationStack:
    """Rule instances registered per document depth.

    ``levels[d]`` holds the instances pushed when elements at depth ``d``
    reached a navigational final state.  Level 0 is the implicit closed
    policy and stays empty.
    """

    __slots__ = ("levels", "_version", "_snapshot_cache", "peak_entries", "push_count")

    def __init__(self):
        self.levels: List[List[RuleInstance]] = [[]]
        self._version = 0
        self._snapshot_cache: Optional[Tuple[int, AccessSnapshot]] = None
        self.peak_entries = 0
        self.push_count = 0

    def open_level(self, depth: int) -> None:
        """Enter an element at ``depth`` (levels list grows as needed)."""
        while len(self.levels) <= depth:
            self.levels.append([])

    def push(self, depth: int, instance: RuleInstance) -> None:
        """Register ``instance`` at ``depth`` (nav final state reached)."""
        self.open_level(depth)
        self.levels[depth].append(instance)
        self.push_count += 1
        self._version += 1
        total = sum(len(level) for level in self.levels)
        if total > self.peak_entries:
            self.peak_entries = total

    def close_level(self, depth: int) -> None:
        """Leave the element at ``depth``: its entries go out of scope."""
        if depth < len(self.levels):
            changed = any(self.levels[d] for d in range(depth, len(self.levels)))
            del self.levels[depth:]
            if changed:
                self._version += 1

    def snapshot(self) -> AccessSnapshot:
        """Frozen condition view of the current stack (cached per
        version: cheap when many sibling nodes share the same stack)."""
        cache = self._snapshot_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        snapshot = AccessSnapshot(
            tuple(tuple(level) for level in self.levels[1:] if level)
        )
        self._snapshot_cache = (self._version, snapshot)
        return snapshot

    def current_decision(self) -> int:
        """Three-valued decision for the current node (DecideNode)."""
        return decide(self.levels[1:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AuthorizationStack(%d levels)" % (len(self.levels) - 1)
