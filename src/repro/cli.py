"""Command-line interface.

Exposes the pipeline end to end::

    python -m repro inspect  doc.xml
    python -m repro encode   doc.xml doc.xskp
    python -m repro protect  doc.xml doc.store --scheme ECB-MHT --key 00112233445566778899aabbccddeeff
    python -m repro view     doc.store --key 001122... --rule "+://book" --rule "-://internal" [--query "//book[price < 20]"]
    python -m repro bench    [table1 table2 fig8 fig9 fig10 fig11 fig12 server updates hotpath]
    python -m repro serve    --port 8471 [--hospital 3 | --store doc.store --key ... --rule ... --subject bob]
    python -m repro serve    --port 8471 --store ./station-data --cache-mb 64   # persistent chunk log
    python -m repro cluster  --backends 3 --replicas 2 [--documents 2 --port 8470] [--store ./cluster-data]
    python -m repro store    inspect ./station-data [--format json]
    python -m repro store    compact ./station-data
    python -m repro remote-view 127.0.0.1:8471 hospital --subject secretary [--query ...]
    python -m repro update   127.0.0.1:8471 hospital --subject secretary --kind update-text --path 0,1 --text "new value"
    python -m repro loadgen  127.0.0.1:8471 --clients 8 --queries 5 [--mix "subject[:weight[:query]]" ...]
    python -m repro loadgen  --cluster 3 --replicas 2 --kill-one --output BENCH_cluster.json
    python -m repro stats    127.0.0.1:8470 [--format table|csv|json]
    python -m repro top      127.0.0.1:8470 [--interval 2] [--once]

The protected store is a self-describing file: one JSON header line
(scheme name, layout, plaintext size) followed by the raw terminal
bytes.  The key never appears in the file — it travels via the secure
channel (see :mod:`repro.soe.provisioning`), or here, the command line.

``--store`` is overloaded for compatibility: an existing regular file
is the legacy single-document protected store above; anything else is
treated as a :class:`repro.store.LogStore` directory (created on first
use) holding the station's whole persistent document set.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.accesscontrol.model import AccessRule, Policy
from repro.crypto.chunks import ChunkLayout
from repro.crypto.integrity import SCHEMES, SecureDocument, make_scheme
from repro.engine import DocumentPipeline, compile_policy
from repro.skipindex.variants import encoding_report
from repro.soe.costmodel import CONTEXTS
from repro.soe.session import PreparedDocument, SecureSession
from repro.skipindex.decoder import decode_document, EncodedDocument
from repro.skipindex.decoder import read_header
from repro.xmlkit.parser import parse_document
from repro.xmlkit.serializer import serialize_events

STORE_MAGIC = "XPROT1"


def _load_xml(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_document(handle.read())


def _parse_key(text: Optional[str]) -> bytes:
    if not text:
        return b"\x00" * 16
    key = bytes.fromhex(text)
    if len(key) != 16:
        raise SystemExit("key must be 16 bytes (32 hex characters)")
    return key


def _parse_rules(rule_args: List[str]) -> List[AccessRule]:
    rules = []
    for raw in rule_args:
        if ":" not in raw or raw[0] not in "+-":
            raise SystemExit(
                "rule must look like '+://path' or '-://path', got %r" % raw
            )
        sign, _sep, expression = raw.partition(":")
        rules.append(AccessRule(sign, expression))
    return rules


# ----------------------------------------------------------------------
def cmd_inspect(args) -> int:
    tree = _load_xml(args.document)
    print("document statistics:")
    print("  elements:      %d" % tree.count_elements())
    print("  text nodes:    %d" % tree.count_text_nodes())
    print("  text bytes:    %d" % tree.text_size())
    print("  max depth:     %d" % tree.max_depth())
    print("  avg depth:     %.2f" % tree.average_depth())
    print("  distinct tags: %d" % len(tree.distinct_tags()))
    print("encodings (structure/text %):")
    for name, stats in encoding_report(tree).items():
        print(
            "  %-6s total=%8d bytes  struct/text=%6.1f%%"
            % (name, stats.total_bytes, 100.0 * stats.struct_text_ratio())
        )
    return 0


def cmd_encode(args) -> int:
    from repro.engine import EncodeStage, ParseStage

    with open(args.document, "r", encoding="utf-8") as handle:
        source = handle.read()
    ctx = DocumentPipeline([ParseStage(), EncodeStage()]).run(source=source)
    encoded = ctx.encoded
    with open(args.output, "wb") as handle:
        handle.write(encoded.data)
    print(
        "encoded %d elements into %d bytes (%d dictionary entries, "
        "%d fixpoint rounds)"
        % (
            ctx.tree.count_elements(),
            len(encoded.data),
            len(encoded.dictionary),
            encoded.stats.fixpoint_rounds,
        )
    )
    return 0


def cmd_decode(args) -> int:
    with open(args.store, "rb") as handle:
        data = handle.read()
    dictionary, offset = read_header(data)
    from repro.skipindex.encoder import EncodedDocument as _Enc
    from repro.skipindex.encoder import EncodingStats

    document = _Enc(data, dictionary, EncodingStats(), offset)
    tree = decode_document(document)
    from repro.xmlkit.serializer import serialize

    sys.stdout.write(serialize(tree, indent=2))
    return 0


def cmd_protect(args) -> int:
    key = _parse_key(args.key)
    with open(args.document, "r", encoding="utf-8") as handle:
        source = handle.read()
    pipeline = DocumentPipeline.publisher(scheme=args.scheme, key=key)
    prepared = pipeline.run(source=source).prepared
    secure = prepared.secure
    header = json.dumps(
        {
            "magic": STORE_MAGIC,
            "scheme": args.scheme,
            "plaintext_size": secure.plaintext_size,
            "chunk_size": prepared.scheme.layout.chunk_size,
            "fragment_size": prepared.scheme.layout.fragment_size,
        }
    )
    with open(args.output, "wb") as handle:
        handle.write(header.encode("utf-8") + b"\n")
        handle.write(bytes(secure.stored))
    print(
        "protected with %s: %d plaintext -> %d stored bytes"
        % (args.scheme, secure.plaintext_size, secure.stored_size())
    )
    return 0


def _load_store(path: str, key: bytes) -> PreparedDocument:
    with open(path, "rb") as handle:
        header_line = handle.readline()
        stored = handle.read()
    header = json.loads(header_line.decode("utf-8"))
    if header.get("magic") != STORE_MAGIC:
        raise SystemExit("not a repro protected store")
    layout = ChunkLayout(
        chunk_size=header["chunk_size"], fragment_size=header["fragment_size"]
    )
    scheme = make_scheme(header["scheme"], key=key, layout=layout)
    secure = SecureDocument(scheme, stored, header["plaintext_size"])
    # Recover the dictionary by reading the (decrypted) header region.
    from repro.crypto.integrity import SecureBytes
    from repro.metrics import Meter
    from repro.skipindex.encoder import EncodingStats

    probe = SecureBytes(scheme.reader(secure, Meter()))
    dictionary, offset = read_header(probe)
    encoded = EncodedDocument(b"", dictionary, EncodingStats(), offset)
    return PreparedDocument(encoded, scheme, secure)


def cmd_view(args) -> int:
    key = _parse_key(args.key)
    prepared = _load_store(args.store, key)
    rules = _parse_rules(args.rule or [])
    policy = Policy(rules, subject=args.subject or "", dummy_tag=args.dummy_tag)
    plan = compile_policy(policy)
    session = SecureSession(
        prepared,
        plan,
        query=args.query,
        context=args.context,
        use_skip_index=not args.brute_force,
    )
    result = session.run()
    print(serialize_events(result.events))
    if args.costs:
        breakdown = result.breakdown
        print(
            "# simulated %.4f s on %s "
            "(comm %.4f, dec %.4f, ac %.4f, integrity %.4f); "
            "%d bytes in, %d bytes out, %d subtrees skipped"
            % (
                result.seconds,
                session.context.name,
                breakdown.communication,
                breakdown.decryption,
                breakdown.access_control,
                breakdown.integrity,
                result.meter.bytes_transferred,
                result.meter.bytes_delivered,
                result.meter.skipped_subtrees,
            ),
            file=sys.stderr,
        )
    return 0


def cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = list(args.experiments)
    if args.format != "table":
        argv += ["--format", args.format]
    if args.backend:
        argv += ["--backend", args.backend]
    return bench_main(argv)


# ----------------------------------------------------------------------
# Network layer (repro.server)
# ----------------------------------------------------------------------
def _slow_query_printer(record) -> None:
    """Slow-query sink: dump the full span tree to stderr as it lands."""
    from repro.obs.trace import format_span_tree

    print(format_span_tree(record.as_dict()), file=sys.stderr, flush=True)


def _start_metrics(registry, args):
    """Boot the Prometheus endpoint when ``--metrics-port`` was given."""
    if getattr(args, "metrics_port", None) is None:
        return None
    from repro.obs.http import MetricsServer

    metrics_server = MetricsServer(
        registry, args.metrics_port, host=args.host
    ).start()
    print("metrics on http://%s/metrics" % metrics_server.address, flush=True)
    return metrics_server


def _open_store_arg(path: str, cache_mb, sync: str):
    from repro.store import open_store

    cache_bytes = None if cache_mb is None else int(cache_mb) * 1024 * 1024
    return open_store(path, cache_bytes=cache_bytes, sync=sync)


def cmd_serve(args) -> int:
    import asyncio
    import os

    from repro import open_station
    from repro.engine import PublishOptions, StationConfig
    from repro.server.service import StationServer, hospital_station

    if args.store and os.path.isfile(args.store):
        # Legacy single-document protected store file.
        key = _parse_key(args.key)
        prepared = _load_store(args.store, key)
        station = open_station(
            StationConfig(context=args.context, backend=args.backend)
        )
        document_id = args.document_id
        station.publish(document_id, prepared, PublishOptions(index=args.index))
        rules = _parse_rules(args.rule or [])
        if not rules:
            raise SystemExit("--store serving needs at least one --rule")
        subject = args.subject or ""
        policy = Policy(rules, subject=subject)
        station.grant(document_id, policy, subject=subject)
        subjects = [subject]
    else:
        chunk_store = None
        if args.store:
            chunk_store = _open_store_arg(args.store, args.cache_mb, args.sync)
        station, subjects = hospital_station(
            folders=args.hospital,
            context=args.context,
            backend=args.backend,
            store=chunk_store,
            index=args.index,
        )
        document_id = "hospital"

    server = StationServer(
        station,
        host=args.host,
        port=args.port,
        chunk_size=args.chunk_size,
        queue_depth=args.queue_depth,
        seal=args.seal,
        allow_updates=not args.readonly,
        slow_ms=args.slow_ms,
        slow_sink=_slow_query_printer if args.slow_ms is not None else None,
    )
    metrics_server = _start_metrics(server.registry, args)

    async def amain() -> None:
        host, port = await server.start()
        print(
            "serving %r on %s:%d (subjects: %s, backend: %s)%s"
            % (
                document_id,
                host,
                port,
                ", ".join(subjects),
                station.backend.name,
                " [sealed link]" if args.seal else "",
            ),
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(amain())
    except KeyboardInterrupt:
        print("station server stopped", file=sys.stderr)
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        # Shutdown summary: the operational counters (plan/view cache
        # behaviour, volumes) that were previously visible only
        # in-process — remote operators get them live via STATS, and
        # here one last time on the way out.
        summary = {
            "station": station.stats.as_dict(),
            "cached_plans": station.cached_plans(),
            "cached_views": station.cached_views(),
            "backend": station.backend.describe(),
            "store": station.store.describe(),
            "server": dict(server.server_stats),
            "meter": {
                k: v for k, v in server.meter.as_dict().items() if v
            },
        }
        print(json.dumps(summary, indent=2), file=sys.stderr)
        station.close()
    return 0


def cmd_cluster(args) -> int:
    """Boot the in-process sharded cluster and serve until interrupted."""
    import time

    from repro.cluster.topology import hospital_cluster

    cluster, document_ids, subjects = hospital_cluster(
        backends=args.backends,
        replicas=args.replicas,
        documents=args.documents,
        folders=args.folders,
        context=args.context,
        host=args.host,
        gateway_port=args.port,
        slow_ms=args.slow_ms,
        trace=args.trace,
        store_dir=args.store,
        cache_mb=args.cache_mb,
    )
    metrics_server = None
    if cluster.gateway is not None:
        if args.slow_ms is not None:
            cluster.gateway.tracer.slow_sink = _slow_query_printer
        metrics_server = _start_metrics(cluster.gateway.registry, args)
    try:
        host, port = cluster.gateway_address
        print(
            "cluster gateway on %s:%d — %d backends, R=%d (subjects: %s)"
            % (host, port, args.backends, args.replicas, ", ".join(subjects)),
            flush=True,
        )
        for name, node in sorted(cluster.nodes.items()):
            print(
                "  backend %-8s %s:%d" % (name, node.address[0], node.address[1]),
                flush=True,
            )
        for document_id in document_ids:
            print(
                "  document %-12s primary=%s"
                % (document_id, cluster.primary_of(document_id)),
                flush=True,
            )
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("cluster stopped", file=sys.stderr)
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        gateway = cluster.gateway
        if gateway is not None:
            print(
                json.dumps(
                    {
                        "gateway": dict(gateway.gateway_stats),
                        "observability": gateway.tracer.stats(),
                    },
                    indent=2,
                ),
                file=sys.stderr,
            )
        cluster.stop()
    return 0


def cmd_store(args) -> int:
    """Offline maintenance of a persistent chunk-store directory."""
    import os

    from repro.store import LogStore, StoreError

    if not os.path.isdir(args.directory):
        raise SystemExit("not a store directory: %s" % args.directory)
    try:
        store = LogStore(args.directory)
    except StoreError as exc:
        raise SystemExit("cannot open store: %s" % exc)
    try:
        if args.action == "compact":
            before = store.describe()
            stats = store.compact()
            print(
                "compacted generation %d -> %d: %d -> %d bytes "
                "(%d documents, %d bytes reclaimed)"
                % (
                    before["generation"],
                    stats["generation"],
                    stats["log_bytes_before"],
                    stats["log_bytes_after"],
                    stats["documents"],
                    stats["reclaimed_bytes"],
                )
            )
            return 0
        description = store.describe()
        description["document_versions"] = store.versions()
        if args.format == "json":
            print(json.dumps(description, indent=2, sort_keys=True))
            return 0
        print("store %s (generation %d)" % (args.directory, description["generation"]))
        for key in (
            "documents",
            "log_bytes",
            "live_bytes",
            "segments",
            "manifest_replays",
            "torn_bytes_dropped",
            "orphan_records_dropped",
            "lost_entries_dropped",
            "compactions",
        ):
            print("  %-24s %s" % (key, description.get(key, "-")))
        for document_id, version in sorted(store.versions().items()):
            print("  document %-16s v%d" % (document_id, version))
    finally:
        store.close()
    return 0


def cmd_remote_view(args) -> int:
    from repro.server.client import RemoteError, RemoteSession
    from repro.server.loadgen import parse_address

    host, port = parse_address(args.address)
    with RemoteSession(
        host, port, args.subject or "", connect_retry=args.connect_retry
    ) as session:
        try:
            result = session.evaluate(args.document, query=args.query)
        except RemoteError as exc:
            raise SystemExit("server refused the query -- %s" % exc)
        sys.stdout.write(result.text)
        if result.text and not result.text.endswith("\n"):
            sys.stdout.write("\n")
        if args.costs:
            print(
                "# %d bytes in %d chunks; simulated %.4f s on the SOE"
                % (result.result_bytes, result.chunks, result.seconds),
                file=sys.stderr,
            )
        if args.stats:
            print(json.dumps(session.stats(), indent=2), file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    """One STATS round-trip, rendered as a table, CSV or JSON."""
    from repro.obs.dashboard import render_stats
    from repro.server.client import RemoteSession
    from repro.server.loadgen import parse_address

    host, port = parse_address(args.address)
    try:
        with RemoteSession(
            host, port, args.subject or "@stats", connect_retry=args.connect_retry
        ) as session:
            body = session.stats()
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            "cannot reach station at %s:%d -- %s" % (host, port, exc)
        )
    print(render_stats(body, args.format))
    return 0


def cmd_top(args) -> int:
    """Live terminal dashboard over a station server or gateway.

    Redraws every ``--interval`` seconds from STATS round-trips —
    per-backend throughput, latency percentiles, view-cache hit rate,
    pool fallbacks, native-kernel availability and ring health.
    ``--once`` prints a single frame and exits (scripts, tests).
    """
    import time

    from repro.obs.dashboard import render_top
    from repro.server.client import RemoteSession
    from repro.server.loadgen import parse_address

    host, port = parse_address(args.address)
    address = "%s:%d" % (host, port)
    try:
        with RemoteSession(
            host,
            port,
            args.subject or "@top",
            connect_retry=args.connect_retry,
            auto_reconnect=True,
        ) as session:
            previous = None
            try:
                while True:
                    body = session.stats()
                    text = render_top(body, previous, args.interval, address)
                    if args.once:
                        print(text)
                        return 0
                    # Clear + home, then one frame; plain ANSI keeps this
                    # dependency-free and scrollback-friendly under watch.
                    sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
                    sys.stdout.flush()
                    previous = body
                    time.sleep(args.interval)
            except KeyboardInterrupt:
                print()
    except (ConnectionError, OSError) as exc:
        # A dashboard pointed at a dead or unreachable server is an
        # operator typo, not a crash: one line, non-zero exit.
        raise SystemExit(
            "cannot reach station at %s -- %s" % (address, exc)
        )
    return 0


def _parse_index_path(text: str) -> List[int]:
    if not text:
        return []
    try:
        return [int(part) for part in text.split(",")]
    except ValueError:
        raise SystemExit("--path must be comma-separated indexes, e.g. '0,2'")


def cmd_update(args) -> int:
    """Apply one live edit to a document on a running station server."""
    from repro.server.client import RemoteError, RemoteSession
    from repro.server.loadgen import parse_address
    from repro.skipindex.updates import UpdateError, UpdateOp
    from repro.xmlkit.parser import parse_document

    node = None
    if args.xml:
        node = parse_document(args.xml)
    try:
        op = UpdateOp(
            args.kind.replace("-", "_"),
            _parse_index_path(args.path or ""),
            text=args.text,
            tag=args.tag,
            node=node,
            position=args.at,
        )
    except UpdateError as exc:
        raise SystemExit("bad update: %s" % exc)
    host, port = parse_address(args.address)
    with RemoteSession(
        host, port, args.subject or "", connect_retry=args.connect_retry
    ) as session:
        try:
            trailer = session.update(args.document, op)
        except RemoteError as exc:
            raise SystemExit("server refused the update -- %s" % exc)
    summary = trailer.get("update", {})
    print(
        "updated %r to version %s: re-encrypted %s/%s chunks (%.1f%%%s), "
        "%s bytes"
        % (
            args.document,
            trailer.get("version"),
            summary.get("chunks_reencrypted"),
            summary.get("total_chunks"),
            100.0 * float(summary.get("dirtied_ratio", 0.0)),
            ", worst case" if summary.get("worst_case") else "",
            summary.get("reencrypted_bytes"),
        )
    )
    return 0


def cmd_loadgen(args) -> int:
    from repro.server.loadgen import main as loadgen_main

    argv = ["--clients", str(args.clients),
            "--queries", str(args.queries), "--document", args.document,
            "--output", args.output]
    if args.address:
        argv.insert(0, args.address)
    if args.cluster:
        argv += ["--cluster", str(args.cluster),
                 "--replicas", str(args.replicas),
                 "--cluster-documents", str(args.cluster_documents),
                 "--folders", str(args.folders)]
        if args.kill_one:
            argv += ["--kill-one"]
    for subject in args.subjects or []:
        argv += ["--subject", subject]
    if args.query:
        argv += ["--query", args.query]
    for spec in args.mix or []:
        argv += ["--mix", spec]
    if args.seed:
        argv += ["--seed", str(args.seed)]
    if args.backend:
        argv += ["--backend", args.backend]
    if args.trace:
        argv += ["--trace"]
    if args.slow_ms is not None:
        argv += ["--slow-ms", str(args.slow_ms)]
    return loadgen_main(argv)


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Client-based access control for XML documents "
        "(Bouganim et al., VLDB 2004).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_inspect = sub.add_parser("inspect", help="document statistics + Fig. 8 row")
    p_inspect.add_argument("document")
    p_inspect.set_defaults(func=cmd_inspect)

    p_encode = sub.add_parser("encode", help="Skip-index encode a document")
    p_encode.add_argument("document")
    p_encode.add_argument("output")
    p_encode.set_defaults(func=cmd_encode)

    p_decode = sub.add_parser("decode", help="decode an unencrypted .xskp file")
    p_decode.add_argument("store")
    p_decode.set_defaults(func=cmd_decode)

    p_protect = sub.add_parser("protect", help="encode + encrypt for the terminal")
    p_protect.add_argument("document")
    p_protect.add_argument("output")
    p_protect.add_argument("--scheme", default="ECB-MHT", choices=sorted(SCHEMES))
    p_protect.add_argument("--key", help="16-byte hex key")
    p_protect.set_defaults(func=cmd_protect)

    p_view = sub.add_parser("view", help="authorized view of a protected store")
    p_view.add_argument("store")
    p_view.add_argument("--key", help="16-byte hex key")
    p_view.add_argument(
        "--rule",
        action="append",
        help="access rule, e.g. '+://Folder/Admin' or '-://internal' "
        "(repeatable)",
    )
    p_view.add_argument("--query", help="XPath query over the authorized view")
    p_view.add_argument("--subject", help="binds the USER variable")
    p_view.add_argument("--dummy-tag", help="rename denied ancestors to this tag")
    p_view.add_argument("--context", default="smartcard", choices=sorted(CONTEXTS))
    p_view.add_argument(
        "--brute-force", action="store_true", help="disable the Skip index"
    )
    p_view.add_argument(
        "--costs", action="store_true", help="print the cost report to stderr"
    )
    p_view.set_defaults(func=cmd_view)

    p_bench = sub.add_parser("bench", help="run the paper's experiments")
    p_bench.add_argument("experiments", nargs="*")
    p_bench.add_argument(
        "--format",
        choices=["table", "csv", "json"],
        default="table",
        help="output format for the result tables",
    )
    p_bench.add_argument(
        "--backend",
        choices=["pure", "native", "pool", "all", "auto"],
        help="compute backend for the hotpath experiment "
        "('all' measures every available one)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="serve a station over TCP (repro.server)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8471, help="0 binds an ephemeral port"
    )
    p_serve.add_argument(
        "--hospital",
        type=int,
        default=3,
        metavar="FOLDERS",
        help="serve the generated hospital document with the three "
        "paper profiles (default)",
    )
    p_serve.add_argument(
        "--store",
        metavar="PATH",
        help="persistence: an existing file is served as a legacy "
        "protected store; otherwise a chunk-store directory (created "
        "on first use) that survives restarts",
    )
    p_serve.add_argument(
        "--cache-mb",
        type=int,
        metavar="N",
        help="page-cache budget for a directory --store (default 64)",
    )
    p_serve.add_argument(
        "--sync",
        choices=["commit", "batch"],
        default="commit",
        help="durability for a directory --store: fsync per commit "
        "(default) or only on flush/close",
    )
    p_serve.add_argument("--key", help="16-byte hex key for --store")
    p_serve.add_argument(
        "--rule", action="append", help="access rule for --store (repeatable)"
    )
    p_serve.add_argument("--subject", help="subject granted the --store rules")
    p_serve.add_argument(
        "--document-id", default="store", help="document id for --store"
    )
    p_serve.add_argument("--context", default="smartcard", choices=sorted(CONTEXTS))
    p_serve.add_argument("--chunk-size", type=int, default=4096)
    p_serve.add_argument("--queue-depth", type=int, default=8)
    p_serve.add_argument(
        "--seal",
        action="store_true",
        help="seal every chunk under the session link key",
    )
    p_serve.add_argument(
        "--readonly",
        action="store_true",
        help="refuse UPDATE frames (documents stay immutable)",
    )
    p_serve.add_argument(
        "--index",
        action="store_true",
        help="build the publish-time structural index so eligible "
        "queries are served from chunk-range plans",
    )
    p_serve.add_argument(
        "--backend",
        choices=["pure", "native", "pool", "auto"],
        default="auto",
        help="compute backend for the crypto hot paths "
        "(auto prefers the native C kernels when available)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="expose Prometheus metrics over HTTP on this port "
        "(0 binds an ephemeral port)",
    )
    p_serve.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="log traced requests at or above this many milliseconds, "
        "dumping their full span tree to stderr",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="serve a sharded station cluster behind one gateway "
        "(repro.cluster)",
    )
    p_cluster.add_argument(
        "--backends", type=int, default=3, help="station backends to spawn"
    )
    p_cluster.add_argument(
        "--replicas", type=int, default=2, help="copies per document"
    )
    p_cluster.add_argument(
        "--documents",
        type=int,
        default=2,
        help="hospital documents spread over the shards",
    )
    p_cluster.add_argument(
        "--folders", type=int, default=3, help="hospital folders per document"
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument(
        "--port",
        type=int,
        default=8470,
        help="gateway port (0 binds an ephemeral port)",
    )
    p_cluster.add_argument(
        "--context", default="smartcard", choices=sorted(CONTEXTS)
    )
    p_cluster.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="expose the gateway's Prometheus metrics over HTTP "
        "(0 binds an ephemeral port)",
    )
    p_cluster.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="gateway slow-query threshold; slow span trees go to stderr",
    )
    p_cluster.add_argument(
        "--trace",
        action="store_true",
        help="mint a trace id for every request, even from clients "
        "that did not stamp one",
    )
    p_cluster.add_argument(
        "--store",
        metavar="DIR",
        help="root directory for per-backend chunk stores; a restarted "
        "cluster recovers its documents instead of regenerating them",
    )
    p_cluster.add_argument(
        "--cache-mb",
        type=int,
        metavar="N",
        help="per-backend page-cache budget for --store (default 64)",
    )
    p_cluster.set_defaults(func=cmd_cluster)

    p_store = sub.add_parser(
        "store", help="inspect or compact a persistent chunk-store directory"
    )
    store_sub = p_store.add_subparsers(dest="action", required=True)
    p_store_inspect = store_sub.add_parser(
        "inspect", help="print recovery counters and per-document versions"
    )
    p_store_inspect.add_argument("directory")
    p_store_inspect.add_argument(
        "--format", choices=["table", "json"], default="table"
    )
    p_store_inspect.set_defaults(func=cmd_store)
    p_store_compact = store_sub.add_parser(
        "compact", help="rewrite live records into a fresh generation"
    )
    p_store_compact.add_argument("directory")
    p_store_compact.set_defaults(func=cmd_store)

    p_stats = sub.add_parser(
        "stats", help="one STATS snapshot from a server or gateway"
    )
    p_stats.add_argument("address", help="HOST:PORT")
    p_stats.add_argument(
        "--format", choices=["table", "csv", "json"], default="table"
    )
    p_stats.add_argument("--subject", help="subject to connect as")
    p_stats.add_argument("--connect-retry", type=float, default=5.0)
    p_stats.set_defaults(func=cmd_stats)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a server or gateway"
    )
    p_top.add_argument("address", help="HOST:PORT")
    p_top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period, seconds"
    )
    p_top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    p_top.add_argument("--subject", help="subject to connect as")
    p_top.add_argument("--connect-retry", type=float, default=5.0)
    p_top.set_defaults(func=cmd_top)

    p_remote = sub.add_parser(
        "remote-view", help="authorized view from a running station server"
    )
    p_remote.add_argument("address", help="HOST:PORT")
    p_remote.add_argument("document", help="document id (e.g. 'hospital')")
    p_remote.add_argument("--subject", help="subject to connect as")
    p_remote.add_argument("--query", help="XPath query over the view")
    p_remote.add_argument(
        "--costs", action="store_true", help="print the cost line to stderr"
    )
    p_remote.add_argument(
        "--stats", action="store_true", help="print server STATS to stderr"
    )
    p_remote.add_argument("--connect-retry", type=float, default=5.0)
    p_remote.set_defaults(func=cmd_remote_view)

    p_update = sub.add_parser(
        "update", help="apply a live edit to a served document"
    )
    p_update.add_argument("address", help="HOST:PORT")
    p_update.add_argument("document", help="document id (e.g. 'hospital')")
    p_update.add_argument(
        "--kind",
        required=True,
        choices=["insert-element", "delete-element", "update-text", "rename-element"],
    )
    p_update.add_argument(
        "--path",
        help="comma-separated element-child indexes from the root "
        "(empty = the root itself)",
    )
    p_update.add_argument("--text", help="replacement text for update-text")
    p_update.add_argument("--tag", help="new tag for rename-element")
    p_update.add_argument("--xml", help="new element XML for insert-element")
    p_update.add_argument(
        "--at", type=int, help="insert position among element children"
    )
    p_update.add_argument("--subject", help="subject to connect as")
    p_update.add_argument("--connect-retry", type=float, default=5.0)
    p_update.set_defaults(func=cmd_update)

    p_load = sub.add_parser(
        "loadgen", help="drive N clients x M queries; writes BENCH_server.json"
    )
    p_load.add_argument(
        "address", nargs="?", help="HOST:PORT (omit with --cluster)"
    )
    p_load.add_argument(
        "--cluster",
        type=int,
        metavar="N",
        help="boot an in-process N-backend cluster and load its gateway",
    )
    p_load.add_argument("--replicas", type=int, default=2)
    p_load.add_argument("--cluster-documents", type=int, default=2)
    p_load.add_argument("--folders", type=int, default=2)
    p_load.add_argument(
        "--kill-one",
        action="store_true",
        help="failover drill: kill the first document's primary mid-run",
    )
    p_load.add_argument("--clients", type=int, default=8)
    p_load.add_argument("--queries", type=int, default=5)
    p_load.add_argument("--document", default="hospital")
    p_load.add_argument(
        "--subject", action="append", dest="subjects", help="repeatable"
    )
    p_load.add_argument("--query")
    p_load.add_argument(
        "--mix",
        action="append",
        metavar="SUBJECT[:WEIGHT[:QUERY]]",
        help="mixed workload: weighted (subject, query) classes "
        "(repeatable; reports per-class latency + cache hits)",
    )
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--output", default="BENCH_server.json")
    p_load.add_argument(
        "--backend",
        choices=["pure", "native", "pool", "auto"],
        help="compute backend of the in-process server under load "
        "(recorded in the report)",
    )
    p_load.add_argument(
        "--trace",
        action="store_true",
        help="stamp every request with a reproducible trace id and "
        "report server-side tracer counters",
    )
    p_load.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="slow-query threshold for the booted cluster gateway",
    )
    p_load.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
