"""repro — Client-Based Access Control Management for XML documents.

A faithful, full-system reproduction of Bouganim, Dang Ngoc & Pucheral
(VLDB 2004 / INRIA RR-5282): a streaming evaluator of XPath-based access
control rules running inside a simulated Secure Operating Environment
(smart card), with a Skip index over compressed encrypted XML, pending-
predicate management and Merkle-tree random integrity checking.

Quickstart::

    from repro import AccessRule, Policy, authorized_view, compile_policy
    from repro.xmlkit import parse_document

    doc = parse_document("<folder><admin>id</admin><acts>x</acts></folder>")
    policy = Policy([AccessRule("+", "//admin")], subject="secretary")
    view = authorized_view(doc, policy)

    # Serving many documents/requests: compile once, reuse everywhere.
    plan = compile_policy(policy)
    view = authorized_view(doc, plan)

The :mod:`repro.engine` layer holds the production-facing machinery:
compiled :class:`~repro.engine.plans.PolicyPlan` objects, the
:class:`~repro.engine.pipeline.DocumentPipeline` stages and the
multi-client :class:`~repro.engine.station.SecureStation` server.

See DESIGN.md for the system inventory (with the layer diagram) and
EXPERIMENTS.md for the paper-versus-measured record of every table and
figure.
"""

from typing import List, Optional, Union

from repro.accesscontrol.evaluator import StreamingEvaluator, evaluate_events
from repro.engine import (
    DocumentPipeline,
    PolicyPlan,
    PublishOptions,
    QueryPlan,
    SecureStation,
    StationConfig,
    compile_policy,
    compile_query,
)
from repro.accesscontrol.model import (
    DENY,
    PENDING,
    PERMIT,
    AccessRule,
    Policy,
    make_policy,
    negative,
    positive,
)
from repro.accesscontrol.reference import reference_authorized_view
from repro.metrics import Meter
from repro.skipindex.updates import UpdateOp
from repro.xmlkit.dom import Node
from repro.xmlkit.events import Event

__version__ = "1.0.0"

__all__ = [
    "AccessRule",
    "Policy",
    "make_policy",
    "positive",
    "negative",
    "PERMIT",
    "DENY",
    "PENDING",
    "StreamingEvaluator",
    "evaluate_events",
    "reference_authorized_view",
    "authorized_view",
    "Meter",
    # engine layer
    "PolicyPlan",
    "QueryPlan",
    "compile_policy",
    "compile_query",
    "DocumentPipeline",
    "SecureStation",
    "StationConfig",
    "PublishOptions",
    "open_station",
    "connect",
    "UpdateOp",
    "__version__",
]


def authorized_view(
    document: Union[Node, List[Event]],
    policy: Union[Policy, PolicyPlan],
    query: Optional[str] = None,
    with_index: bool = True,
) -> List[Event]:
    """Authorized view of ``document`` under ``policy`` (streaming path).

    ``document`` is a DOM tree or an event list; the result is an event
    stream (use :func:`repro.xmlkit.events.events_to_tree` or
    :func:`repro.xmlkit.serialize_events` to materialize it).  ``policy``
    may be a precompiled :class:`~repro.engine.plans.PolicyPlan` (from
    :func:`compile_policy`) to amortize compilation across documents.
    """
    events = list(document.iter_events()) if isinstance(document, Node) else document
    return evaluate_events(events, policy, query=query, with_index=with_index)


def open_station(
    config: Optional[StationConfig] = None, **overrides
) -> SecureStation:
    """Open a :class:`SecureStation` from a :class:`StationConfig`.

    The one construction front door: the CLI, the server topology and
    the benchmarks all route through it, so every station in the system
    is describable as a config value.  Keyword ``overrides`` win over
    the config's fields (``open_station(cfg, prune=False)``)::

        station = repro.open_station(repro.StationConfig(context="pc"))
        station.publish("doc", xml, repro.PublishOptions(index=True))
    """
    return SecureStation(config, **overrides)


def connect(address: Union[str, tuple], subject: str, **options):
    """Open a :class:`~repro.server.client.RemoteSession` to a station
    server at ``address`` — ``"host:port"`` or a ``(host, port)`` pair.

    The client-side half of the unified API: ``options`` pass straight
    through to :class:`RemoteSession` (``timeout``, ``cache_views``,
    ``auto_reconnect``, ``trace``...).  Imported lazily so the core
    library stays importable without the server package.
    """
    from repro.server.client import RemoteSession

    if isinstance(address, str):
        host, _, port_text = address.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(
                "address must be 'host:port' or a (host, port) tuple, got %r"
                % (address,)
            )
        host, port = host, int(port_text)
    else:
        host, port = address
    return RemoteSession(host, int(port), subject, **options)
