"""Persistent document lifecycle: the station's chunk store layer.

The paper's trusted-station model assumes the encrypted corpus
outlives any single session; until this layer existed every published
document lived in ``SecureStation``'s process memory, so a restart
lost the corpus and cluster "repair" meant a full re-publish from the
caller.  :class:`ChunkStore` is the seam the whole document lifecycle
now flows through:

* :class:`MemoryStore` — the historical behaviour, verbatim: documents
  are plain in-process objects, nothing touches disk.  The default, so
  every existing caller is byte- and perf-identical.
* :class:`LogStore` — a disk-backed store: an append-only encrypted
  chunk log plus an fsync'd version manifest, mmap'd reads behind an
  LRU page cache with a configurable byte budget, streaming publish
  for documents larger than RAM, and crash recovery that truncates a
  torn tail record and replays the version chain so a restarted
  station serves byte-identical views at the pre-crash version.

``open_store(None)`` keeps the in-memory default; ``open_store(path)``
opens (or creates) a directory-backed :class:`LogStore`.
"""

from repro.store.base import ChunkStore, MemoryStore, StoreError, StoredDocument
from repro.store.log import LogStore

__all__ = [
    "ChunkStore",
    "MemoryStore",
    "LogStore",
    "StoreError",
    "StoredDocument",
    "open_store",
]


def open_store(
    path=None,
    cache_bytes=None,
    sync="commit",
):
    """Factory behind every ``--store`` flag.

    ``path`` ``None`` -> :class:`MemoryStore`; a directory path (created
    if missing) -> :class:`LogStore` with ``cache_bytes`` of page cache
    (default 64 MiB) and the given ``sync`` policy.
    """
    if path is None:
        return MemoryStore()
    kwargs = {"sync": sync}
    if cache_bytes is not None:
        kwargs["cache_bytes"] = cache_bytes
    return LogStore(path, **kwargs)
