"""Disk-backed chunk store: append-only log + fsync'd version manifest.

Layout of a store directory (one generation live at a time)::

    CURRENT            -> "<generation>\\n", swapped atomically by compact
    LOCK               -> flock'd for the life of the owning process
    chunks-<gen>.log   -> the encrypted chunk log (untrusted-terminal bytes)
    manifest-<gen>.log -> the version manifest (trusted SOE metadata)

**Chunk log.** A sequence of *segment records*, each holding up to
``SEGMENT_BYTES`` of consecutive chunk records for one document at one
version::

    MAGIC(4) | body_len(u32) | crc32(body)(u32) | body
    body = id_len(u16) | document id | version(u64) | first_record(u32)
           | chunk record bytes...

The log is strictly append-only: an update appends only the dirtied
chunk records; superseded records stay where they are (dead weight
until :meth:`LogStore.compact`), which is what makes the old snapshot's
pager valid for in-flight readers — copy-on-write across the disk
boundary.

**Manifest.** One fsync'd JSON line per committed document version
(``crc32`` prefix, newline terminated), carrying everything trusted
that the paper ships over the secure channel: the document key, the
tag dictionary, the root offset, the update version and per-chunk
versions, plus the run map ``chunk record index -> log offset``.  A
commit orders ``append chunk records -> flush/fsync log -> append
manifest line -> fsync manifest``, so a manifest entry never references
bytes that did not hit the log first.

**Recovery state machine** (at :meth:`open`): replay manifest lines
until the first torn/corrupt line and truncate the manifest there;
take the committed log tail from the last good entry; walk any log
bytes past it (complete records are orphans of an interrupted commit,
an incomplete one is the torn tail) and truncate the log back to the
committed tail; validate each document's entries form a strictly
increasing version chain (a rollback raises
:class:`~repro.crypto.integrity.IntegrityError` — trusted metadata
must never move backwards); keep the newest valid entry per document.
A restarted station therefore serves byte-identical views at exactly
the pre-crash committed version.

**Reads.** The log is mmap'd; chunk reads go through an LRU *page
cache* of verified segment payloads bounded by ``cache_bytes``.  A
miss CRC-checks the whole segment once (disk corruption surfaces here,
before the crypto layer's MAC check) and caches it; a hit is a
dictionary lookup — the cache-hit-vs-cold ratio the store benchmark
guards.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import zlib
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.crypto.chunks import ChunkLayout
from repro.crypto.integrity import (
    SCHEMES,
    IntegrityError,
    SecureDocument,
    make_scheme,
    storage_spec,
)
from repro.metrics import Meter
from repro.skipindex.encoder import EncodedDocument, EncodingStats
from repro.skipindex.structural import (
    StructuralIndexError,
    parse_structural_index,
)
from repro.soe.session import PreparedDocument
from repro.store.base import ChunkStore, StoreError, StoredDocument
from repro.xmlkit.dictionary import TagDictionary

MAGIC = b"RPCL"
_HEADER = struct.Struct(">4sII")  # magic, body length, crc32(body)
#: ``first_record`` sentinel marking a segment that carries a document's
#: structural-index blob instead of chunk records.  Readers never
#: interpret it — the manifest's ``ix`` span points straight at the
#: payload — but the sentinel keeps log dumps self-describing.
INDEX_RECORD = 0xFFFFFFFF
#: Cap on one segment record's chunk-record payload; a large publish is
#: split into many segments, which bounds both the page-cache entry
#: size and the streaming-publish write buffer.
SEGMENT_BYTES = 256 * 1024
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

_SYNC_MODES = ("commit", "batch")


def _crc(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _rle_encode(values: List[int]) -> List[List[int]]:
    runs: List[List[int]] = []
    for value in values:
        if runs and runs[-1][0] == value:
            runs[-1][1] += 1
        else:
            runs.append([value, 1])
    return runs


def _rle_decode(runs: Iterable[Iterable[int]]) -> List[int]:
    values: List[int] = []
    for value, count in runs:
        values.extend([value] * count)
    return values


class _Segment:
    """Index entry for one log record: where its payload lives."""

    __slots__ = ("payload_offset", "payload_len", "crc", "verified")

    def __init__(self, payload_offset: int, payload_len: int, crc: int):
        self.payload_offset = payload_offset
        self.payload_len = payload_len
        self.crc = crc
        self.verified = False


class _DocState:
    """Trusted metadata of one document (the live manifest entry)."""

    __slots__ = (
        "document_id",
        "version",
        "key",
        "scheme_name",
        "cipher_kind",
        "layout",
        "plaintext_size",
        "secure_version",
        "chunk_versions",
        "root_offset",
        "tags",
        "stats",
        "runs",
        "index_span",
        "index_cache",
        "handle",
    )

    def __init__(self):
        self.handle: Optional[StoredDocument] = None
        #: ``(payload_offset, length)`` of the structural-index blob in
        #: the *current* generation's log, or ``None`` (unindexed).
        self.index_span: Optional[Tuple[int, int]] = None
        #: Parsed :class:`~repro.skipindex.structural.StructuralIndex`
        #: (lazy; generation-independent plain data).
        self.index_cache = None


class LazyPlaintext:
    """Decrypt-on-demand stand-in for ``EncodedDocument.data``.

    A store-loaded document does not keep its plaintext encoding in
    RAM — serving needs only the dictionary and root offset, and the
    chunk records decrypt lazily through the scheme reader.  The update
    path is the one consumer of the full plaintext; it materializes
    this object once (through the page cache + decrypt path) and works
    on real bytes.
    """

    __slots__ = ("_loader", "_size", "_data")

    def __init__(self, loader, size: int):
        self._loader = loader
        self._size = size
        self._data: Optional[bytes] = None

    def _materialize(self) -> bytes:
        if self._data is None:
            self._data = self._loader()
        return self._data

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __getitem__(self, item):
        return self._materialize()[item]

    def __bytes__(self) -> bytes:
        return self._materialize()

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyPlaintext):
            other = bytes(other)
        if isinstance(other, (bytes, bytearray, memoryview)):
            return self._materialize() == bytes(other)
        return NotImplemented

    def __hash__(self):  # pragma: no cover - not used as a key
        return hash(self._materialize())


class ChunkPager:
    """Byte-addressed view of one document's chunk records on disk.

    Quacks like the ``stored`` bytearray of an in-memory
    :class:`~repro.crypto.integrity.SecureDocument` — ``len()`` and
    contiguous slicing — but resolves reads through the run map
    ``record index -> log offset`` and the store's page cache, so only
    the touched segments ever occupy RAM.  Immutable by construction
    (the log is append-only); tamper tests operate on the log file.

    The pager snapshots its run map at creation: an update appends new
    records and publishes a *new* pager, while this one keeps reading
    the old offsets — still present in the append-only log — which is
    exactly the copy-on-write snapshot isolation in-flight readers had
    with in-memory documents.
    """

    __slots__ = ("_store", "_generation", "_runs", "_record_size", "_size")

    def __init__(self, store: "LogStore", runs, record_size: int, size: int):
        self._store = store
        self._generation = store._generation
        # Runs sorted by first record index: (first, count, offset).
        self._runs = sorted(runs)
        self._record_size = record_size
        self._size = size

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, item) -> bytes:
        if isinstance(item, slice):
            start, stop, step = item.indices(self._size)
            if step != 1:
                raise ValueError("ChunkPager slices must be contiguous")
            return self._read(start, stop - start)
        if item < 0:
            item += self._size
        data = self._read(item, 1)
        if not data:
            raise IndexError("ChunkPager index out of range")
        return data[0]

    def __bytes__(self) -> bytes:
        return self._read(0, self._size)

    def _read(self, start: int, length: int) -> bytes:
        if length <= 0:
            return b""
        record = self._record_size
        parts: List[bytes] = []
        position = start
        end = start + length
        while position < end:
            index = position // record
            within = position % record
            first, count, offset = self._locate(index)
            # Consecutive records inside one run are contiguous in the
            # file: serve the whole overlap in a single store read.
            run_end = (first + count) * record
            take = min(end, run_end) - position
            file_offset = offset + (index - first) * record + within
            parts.append(
                self._store._read_span(self._generation, file_offset, take)
            )
            position += take
        data = b"".join(parts)
        self._store._count_read(len(data))
        return data

    def _locate(self, record_index: int) -> Tuple[int, int, int]:
        runs = self._runs
        position = bisect_right(runs, (record_index, float("inf"), 0)) - 1
        if position >= 0:
            first, count, offset = runs[position]
            if first <= record_index < first + count:
                return first, count, offset
        raise StoreError(
            "chunk record %d is not mapped in the store" % record_index
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ChunkPager(%d bytes, %d runs)" % (self._size, len(self._runs))


class LogStore(ChunkStore):
    """Append-only disk store (see the module docstring for formats).

    Parameters
    ----------
    directory:
        Store directory, created if missing.  Guarded by an exclusive
        ``flock`` so two processes never append to the same log.
    cache_bytes:
        Byte budget of the verified-segment LRU page cache.
    sync:
        ``"commit"`` (default) fsyncs log + manifest on every commit —
        a SIGKILL never loses an acknowledged publish/update.
        ``"batch"`` defers fsync to :meth:`flush`/:meth:`close` (bulk
        corpus builds); a crash may lose recent commits but recovery
        still yields a consistent pre-crash prefix of the chain.
    """

    kind = "log"
    persistent = True

    def __init__(
        self,
        directory: str,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        sync: str = "commit",
    ):
        if sync not in _SYNC_MODES:
            raise ValueError("sync must be one of %s" % (_SYNC_MODES,))
        if cache_bytes < 1:
            raise ValueError("cache_bytes must be >= 1")
        self.directory = os.path.abspath(directory)
        self.cache_bytes = cache_bytes
        self.sync = sync
        self._lock = threading.RLock()
        self._closed = False
        self._backend = None
        self._states: Dict[str, _DocState] = {}
        self._segments: List[_Segment] = []
        self._segment_offsets: List[int] = []
        self._pages: "OrderedDict[Tuple[int, int], bytes]" = OrderedDict()
        self._page_bytes = 0
        self._retired_maps: List[mmap.mmap] = []
        self.counters: Dict[str, int] = {
            "page_hits": 0,
            "page_misses": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "commits": 0,
            "manifest_replays": 0,
            "torn_bytes_dropped": 0,
            "orphan_records_dropped": 0,
            "lost_entries_dropped": 0,
            "index_blobs_dropped": 0,
            "compactions": 0,
        }
        os.makedirs(self.directory, exist_ok=True)
        self._acquire_lock()
        self._generation = self._read_current()
        self._open_generation(recover=True)

    # ------------------------------------------------------------------
    # Paths and low-level file plumbing
    # ------------------------------------------------------------------
    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def _chunk_path(self, generation: int) -> str:
        return self._path("chunks-%06d.log" % generation)

    def _manifest_path(self, generation: int) -> str:
        return self._path("manifest-%06d.log" % generation)

    def _acquire_lock(self) -> None:
        self._lock_file = open(self._path("LOCK"), "a+b")
        try:
            import fcntl

            fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        except OSError:
            self._lock_file.close()
            raise StoreError(
                "store %r is locked by another process" % self.directory
            )

    def _read_current(self) -> int:
        try:
            with open(self._path("CURRENT"), "r", encoding="ascii") as handle:
                return int(handle.read().strip() or "0")
        except FileNotFoundError:
            self._write_current(0)
            return 0

    def _write_current(self, generation: int) -> None:
        tmp = self._path("CURRENT.tmp")
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write("%d\n" % generation)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._path("CURRENT"))
        self._fsync_directory()

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _open_generation(self, recover: bool) -> None:
        generation = self._generation
        self._log = open(self._chunk_path(generation), "a+b")
        self._manifest = open(self._manifest_path(generation), "a+b")
        self._map: Optional[mmap.mmap] = None
        self._map_size = 0
        self._log_size = os.path.getsize(self._chunk_path(generation))
        if recover:
            self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        entries, manifest_keep = self._replay_manifest()
        committed_tail = 0
        for entry in entries:
            committed_tail = max(committed_tail, int(entry.get("tail", 0)))
        if manifest_keep is not None:
            self._manifest.flush()
            os.truncate(self._manifest_path(self._generation), manifest_keep)
            self._manifest.seek(0, os.SEEK_END)
        committed_tail = min(committed_tail, self._log_size)
        self._truncate_log_tail(committed_tail)
        self._build_segment_index(committed_tail)
        self._build_states(entries)

    def _replay_manifest(self) -> Tuple[List[dict], Optional[int]]:
        """Parse manifest lines up to the first torn/corrupt one.

        Returns ``(entries, keep)`` where ``keep`` is the byte offset
        the manifest must be truncated to (``None`` when intact).
        """
        entries: List[dict] = []
        keep: Optional[int] = None
        offset = 0
        self._manifest.seek(0)
        for line in self._manifest:
            full = line.endswith(b"\n")
            if full:
                try:
                    crc_text, payload = line[:-1].split(b" ", 1)
                    if _crc(payload) != int(crc_text, 16):
                        raise ValueError("crc mismatch")
                    entries.append(json.loads(payload.decode("utf-8")))
                    offset += len(line)
                    continue
                except (ValueError, json.JSONDecodeError):
                    pass
            # Torn or corrupt line: drop it and everything after it.
            keep = offset
            break
        self._manifest.seek(0, os.SEEK_END)
        self.counters["manifest_replays"] += len(entries)
        return entries, keep

    def _truncate_log_tail(self, committed_tail: int) -> None:
        """Walk past-commit log bytes, count them, and cut them off."""
        size = self._log_size
        if size <= committed_tail:
            if size < committed_tail:  # defensive; cannot happen with fsync
                raise IntegrityError(
                    "chunk log shorter than the committed manifest tail"
                )
            return
        position = committed_tail
        orphans = 0
        self._log.seek(position)
        while position + _HEADER.size <= size:
            header = self._log.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            magic, body_len, crc = _HEADER.unpack(header)
            if magic != MAGIC or position + _HEADER.size + body_len > size:
                break
            body = self._log.read(body_len)
            if len(body) < body_len or _crc(body) != crc:
                break
            orphans += 1
            position += _HEADER.size + body_len
        self.counters["orphan_records_dropped"] += orphans
        self.counters["torn_bytes_dropped"] += size - committed_tail
        self._log.flush()
        os.truncate(self._chunk_path(self._generation), committed_tail)
        self._log.seek(0, os.SEEK_END)
        self._log_size = committed_tail

    def _build_segment_index(self, tail: int) -> None:
        """Header-walk the committed log into the segment index.

        Only the 12-byte headers are read here; payload CRCs are
        verified lazily, on first (cold) read of each segment.
        """
        self._segments = []
        self._segment_offsets = []
        position = 0
        self._log.seek(0)
        while position + _HEADER.size <= tail:
            header = self._log.read(_HEADER.size)
            magic, body_len, crc = _HEADER.unpack(header)
            if magic != MAGIC or position + _HEADER.size + body_len > tail:
                raise IntegrityError(
                    "chunk log structure damaged at offset %d" % position
                )
            self._segments.append(
                _Segment(position + _HEADER.size, body_len, crc)
            )
            self._segment_offsets.append(position + _HEADER.size)
            position += _HEADER.size + body_len
            self._log.seek(position)
        self._log.seek(0, os.SEEK_END)

    def _build_states(self, entries: List[dict]) -> None:
        self._states = {}
        versions_seen: Dict[str, int] = {}
        for entry in entries:
            document_id = entry["id"]
            version = int(entry["v"])
            prior = versions_seen.get(document_id)
            # Strictly *decreasing* is a rollback (tampered manifest or
            # a replayed old file); an equal version can legitimately
            # appear when two racing publishes serialized at the same
            # counter value — last entry wins, as it did in memory.
            if prior is not None and version < prior:
                raise IntegrityError(
                    "manifest version chain rollback for %r: %d after %d"
                    % (document_id, version, prior)
                )
            versions_seen[document_id] = version
            state = self._state_from_entry(entry)
            if state is not None:
                self._states[document_id] = state

    def _state_from_entry(self, entry: dict) -> Optional[_DocState]:
        state = _DocState()
        state.document_id = entry["id"]
        state.version = int(entry["v"])
        state.key = bytes.fromhex(entry["key"])
        state.scheme_name = entry["scheme"]
        state.cipher_kind = entry["cipher"]
        state.layout = tuple(entry["layout"])
        state.plaintext_size = int(entry["psize"])
        state.secure_version = int(entry["sv"])
        state.chunk_versions = _rle_decode(entry["cv"])
        state.root_offset = int(entry["root"])
        state.tags = list(entry["tags"])
        state.stats = tuple(entry["stats"])
        state.runs = [tuple(run) for run in entry["runs"]]
        record = self._record_size_of(state)
        for first, count, offset in state.runs:
            if offset + count * record > self._log_size:
                # The run points past the recovered log (possible only
                # under sync="batch" crashes): the entry is unusable.
                self.counters["lost_entries_dropped"] += 1
                return None
        span = entry.get("ix")
        if span:
            offset, length = int(span[0]), int(span[1])
            if offset + length <= self._log_size:
                state.index_span = (offset, length)
            else:
                # The blob did not survive the crash; the document still
                # serves — unindexed — from its intact chunk records.
                self.counters["index_blobs_dropped"] += 1
        return state

    @staticmethod
    def _record_size_of(state: _DocState) -> int:
        chunk_size, _fragment, _block, digest_size = state.layout
        has_digest = SCHEMES[state.scheme_name].has_digest
        return chunk_size + (digest_size if has_digest else 0)

    # ------------------------------------------------------------------
    # Reads: mmap + page cache
    # ------------------------------------------------------------------
    def _ensure_map(self, end: int) -> mmap.mmap:
        if self._map is None or self._map_size < end:
            if self._map is not None:
                self._retired_maps.append(self._map)
            self._log.flush()
            size = os.path.getsize(self._chunk_path(self._generation))
            self._map = mmap.mmap(
                self._log.fileno(), size, access=mmap.ACCESS_READ
            )
            self._map_size = size
        return self._map

    def _segment_at(self, offset: int) -> _Segment:
        index = bisect_right(self._segment_offsets, offset) - 1
        if index < 0:
            raise StoreError("offset %d precedes the first segment" % offset)
        segment = self._segments[index]
        if offset >= segment.payload_offset + segment.payload_len:
            raise StoreError("offset %d falls between segments" % offset)
        return segment

    def _segment_payload(self, generation: int, segment: _Segment) -> bytes:
        key = (generation, segment.payload_offset)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.counters["page_hits"] += 1
            return page
        self.counters["page_misses"] += 1
        data = bytes(
            self._ensure_map(segment.payload_offset + segment.payload_len)[
                segment.payload_offset : segment.payload_offset
                + segment.payload_len
            ]
        )
        if not segment.verified:
            if _crc(data) != segment.crc:
                raise IntegrityError(
                    "chunk log segment at offset %d failed its checksum"
                    % segment.payload_offset
                )
            segment.verified = True
        self._pages[key] = data
        self._page_bytes += len(data)
        while self._page_bytes > self.cache_bytes and len(self._pages) > 1:
            _evicted_key, evicted = self._pages.popitem(last=False)
            self._page_bytes -= len(evicted)
        return data

    def _read_span(self, generation: int, offset: int, length: int) -> bytes:
        """Read ``length`` bytes of chunk-record payload at ``offset``.

        Spans come from the pager and always lie inside one run, and a
        run never crosses a segment record (``_append_records`` starts
        a new run per segment, and runs only coalesce when their file
        offsets are record-contiguous — a segment boundary inserts a
        header + id prefix gap that breaks contiguity).
        """
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            if generation != self._generation:
                # The pager predates a compact: its offsets belong to a
                # retired generation.  Force its owner to re-read the
                # document from the store.
                raise StoreError(
                    "document handle is stale (store was compacted); "
                    "re-read it from the store"
                )
            segment = self._segment_at(offset)
            start = offset - segment.payload_offset
            if start + length > segment.payload_len:
                raise StoreError(
                    "span [%d, +%d) crosses a segment boundary"
                    % (offset, length)
                )
            payload = self._segment_payload(generation, segment)
            return payload[start : start + length]

    def _count_read(self, amount: int) -> None:
        with self._lock:
            self.counters["bytes_read"] += amount

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _append_segment(
        self, document_id: str, version: int, first_record: int, payload
    ) -> int:
        """Append one segment record; returns the payload's file offset."""
        encoded_id = document_id.encode("utf-8")
        body = b"".join(
            (
                struct.pack(">H", len(encoded_id)),
                encoded_id,
                struct.pack(">QI", version, first_record),
                bytes(payload),
            )
        )
        header = _HEADER.pack(MAGIC, len(body), _crc(body))
        self._log.write(header)
        self._log.write(body)
        payload_offset = (
            self._log_size + _HEADER.size + len(body) - len(payload)
        )
        segment = _Segment(
            self._log_size + _HEADER.size, len(body), _crc(body)
        )
        segment.verified = True
        self._segments.append(segment)
        self._segment_offsets.append(segment.payload_offset)
        self._log_size += _HEADER.size + len(body)
        self.counters["bytes_written"] += _HEADER.size + len(body)
        return payload_offset

    def _append_records(
        self,
        document_id: str,
        version: int,
        first_record: int,
        records: Iterable[bytes],
        record_size: int,
    ) -> List[Tuple[int, int, int]]:
        """Stream chunk records into bounded segments; returns runs.

        ``records`` may be a generator (the streaming-publish path): at
        most ``SEGMENT_BYTES`` of it is buffered at any moment.
        """
        runs: List[Tuple[int, int, int]] = []
        per_segment = max(1, SEGMENT_BYTES // record_size)
        buffer: List[bytes] = []
        next_record = first_record

        def flush_buffer() -> None:
            nonlocal next_record
            if not buffer:
                return
            payload = b"".join(buffer)
            count = len(buffer)
            offset = self._append_segment(
                document_id, version, next_record, payload
            )
            runs.append((next_record, count, offset))
            next_record += count
            del buffer[:]

        for record in records:
            if len(record) != record_size:
                raise StoreError(
                    "chunk record size %d != expected %d"
                    % (len(record), record_size)
                )
            buffer.append(bytes(record))
            if len(buffer) >= per_segment:
                flush_buffer()
        flush_buffer()
        return runs

    def _commit(self, state: _DocState) -> None:
        """Durably publish ``state``: fsync the log, then the manifest."""
        self._log.flush()
        if self.sync == "commit":
            os.fsync(self._log.fileno())
        payload = json.dumps(
            {
                "id": state.document_id,
                "v": state.version,
                "key": state.key.hex(),
                "scheme": state.scheme_name,
                "cipher": state.cipher_kind,
                "layout": list(state.layout),
                "psize": state.plaintext_size,
                "sv": state.secure_version,
                "cv": _rle_encode(state.chunk_versions),
                "root": state.root_offset,
                "tags": state.tags,
                "stats": list(state.stats),
                "runs": [list(run) for run in state.runs],
                **(
                    {"ix": list(state.index_span)}
                    if state.index_span is not None
                    else {}
                ),
                "tail": self._log_size,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self._manifest.write(b"%08x " % _crc(payload) + payload + b"\n")
        self._manifest.flush()
        if self.sync == "commit":
            os.fsync(self._manifest.fileno())
        self.counters["commits"] += 1

    # ------------------------------------------------------------------
    # ChunkStore API
    # ------------------------------------------------------------------
    def bind_backend(self, backend) -> None:
        self._backend = backend

    def _state_from_prepared(
        self,
        document_id: str,
        prepared: PreparedDocument,
        key: bytes,
        version: int,
    ) -> _DocState:
        spec = storage_spec(prepared.scheme)
        if spec is None:
            raise StoreError(
                "scheme %r uses a custom cipher factory and cannot be "
                "persisted; use MemoryStore" % prepared.scheme.name
            )
        name, cipher_key, cipher_kind, layout = spec
        state = _DocState()
        state.document_id = document_id
        state.version = version
        # Persist the *cipher* key, not the caller's provisioning key:
        # an externally prepared document (cluster publish, failover
        # republish) was encrypted under its own key, and the scheme
        # rebuilt at load time must decrypt with that one.
        state.key = bytes(cipher_key)
        state.scheme_name = name
        state.cipher_kind = cipher_kind
        state.layout = layout
        state.plaintext_size = prepared.secure.plaintext_size
        state.secure_version = prepared.secure.version
        state.chunk_versions = list(prepared.secure.chunk_versions)
        state.root_offset = prepared.encoded.root_offset
        state.tags = prepared.encoded.dictionary.tags()
        stats = prepared.encoded.stats
        state.stats = (
            stats.total_bytes,
            stats.text_bytes,
            stats.dictionary_bytes,
            stats.fixpoint_rounds,
        )
        state.index_cache = prepared.index
        return state

    def _append_index_blob(self, state: _DocState) -> None:
        """Append the document's structural-index blob (if any) as its
        own log segment and point ``state.index_span`` at it.  Called
        before :meth:`_commit`, so the manifest line never references an
        un-fsynced blob."""
        if state.index_cache is None:
            return
        blob = state.index_cache.to_bytes()
        offset = self._append_segment(
            state.document_id, state.version, INDEX_RECORD, blob
        )
        state.index_span = (offset, len(blob))

    def put(
        self,
        document_id: str,
        prepared: PreparedDocument,
        key: bytes,
        version: int,
    ) -> PreparedDocument:
        return self.put_records(
            document_id,
            prepared,
            key,
            version,
            _record_slices(prepared.secure),
        )

    def put_records(
        self,
        document_id: str,
        prepared: PreparedDocument,
        key: bytes,
        version: int,
        records: Iterable[bytes],
    ) -> PreparedDocument:
        """Publish from a record *iterator* (the streaming entry point).

        ``prepared.secure.stored`` is never touched — callers publishing
        a document larger than RAM pass the scheme's record generator
        and a :class:`SecureDocument` shell; at most one segment's
        worth of records is buffered while the log is written.
        """
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            state = self._state_from_prepared(document_id, prepared, key, version)
            record_size = self._record_size_of(state)
            state.runs = self._append_records(
                document_id,
                version,
                0,
                records,
                record_size,
            )
            self._append_index_blob(state)
            self._commit(state)
            self._states[document_id] = state
            # Leave the handle cache cold: a bulk load (bench corpus,
            # cluster seeding) would otherwise pin a scheme + pager
            # object per document.  The first ``get`` warms it.
            state.handle = None
            served = self._handle(state)
            state.handle = None
            return served.prepared

    def put_stream(
        self,
        document_id: str,
        encoded,
        scheme,
        key: bytes,
        version: int,
        index=None,
    ) -> PreparedDocument:
        """Streaming publish: records flow generator -> log, bounded by
        one segment's buffer — the full ciphertext never exists in RAM
        (documents larger than memory publish fine)."""
        shell = SecureDocument(
            scheme, b"", len(encoded.data), version=version
        )
        prepared = PreparedDocument(encoded, scheme, shell, index=index)
        return self.put_records(
            document_id,
            prepared,
            key,
            version,
            scheme.record_stream(encoded.data, version),
        )

    def apply_update(
        self,
        document_id: str,
        prepared: PreparedDocument,
        version: int,
        dirty_chunks: Optional[Set[int]] = None,
    ) -> PreparedDocument:
        """Commit a copy-on-write update: append only the changed records.

        The changed set is derived from the per-chunk version stamps,
        not from the caller's dirty estimate — a chained scheme
        (CBC-SHA-DOC) cascades re-encryption past the dirtied chunks,
        and every cascaded record carries the bumped version, so the
        diff is exact.
        """
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            old = self._states.get(document_id)
            if old is None:
                raise StoreError("unknown document %r" % document_id)
            state = self._state_from_prepared(
                document_id, prepared, old.key, version
            )
            record_size = self._record_size_of(state)
            secure = prepared.secure
            new_count = len(state.chunk_versions)
            changed = set()
            for index in range(new_count):
                if (
                    index >= len(old.chunk_versions)
                    or old.chunk_versions[index] != state.chunk_versions[index]
                ):
                    changed.add(index)
            if dirty_chunks:
                changed.update(
                    index for index in dirty_chunks if index < new_count
                )
            # Carry the surviving runs of the old map, clipped to the
            # new chunk count and minus the re-encrypted records.
            runs: List[Tuple[int, int, int]] = []
            for first, count, offset in sorted(old.runs):
                for index in range(first, min(first + count, new_count)):
                    if index in changed:
                        continue
                    _extend_run(
                        runs, index, offset + (index - first) * record_size
                    )
            appended = self._append_records(
                document_id,
                version,
                0,
                _changed_record_slices(secure, sorted(changed), record_size),
                record_size,
            )
            # _append_records numbers records consecutively from its
            # ``first_record``; re-map the appended runs back onto the
            # real (sparse) changed indexes.
            ordered_changed = sorted(changed)
            for first, count, offset in appended:
                for position in range(count):
                    index = ordered_changed[first + position]
                    _extend_run(runs, index, offset + position * record_size)
            state.runs = _coalesce_runs(runs, record_size)
            # The index describes plaintext offsets, which updates do
            # not relocate retroactively: re-append the (possibly
            # refreshed, possibly reused) blob so the newest manifest
            # entry always owns a live span.
            self._append_index_blob(state)
            self._commit(state)
            self._states[document_id] = state
            state.handle = None
            return self._handle(state).prepared

    def get(self, document_id: str) -> Optional[StoredDocument]:
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            state = self._states.get(document_id)
            if state is None:
                return None
            return self._handle(state)

    def _handle(self, state: _DocState) -> StoredDocument:
        if state.handle is not None:
            return state.handle
        chunk_size, fragment_size, block_size, digest_size = state.layout
        layout = ChunkLayout(
            chunk_size=chunk_size,
            fragment_size=fragment_size,
            block_size=block_size,
            digest_size=digest_size,
        )
        from repro.crypto.integrity import _CIPHER_FACTORIES

        scheme = make_scheme(
            state.scheme_name,
            key=state.key,
            cipher_factory=_CIPHER_FACTORIES[state.cipher_kind],
            layout=layout,
            backend=self._backend,
        )
        record_size = self._record_size_of(state)
        chunk_count = layout.chunk_count(state.plaintext_size)
        pager = ChunkPager(
            self, state.runs, record_size, chunk_count * record_size
        )
        secure = SecureDocument(
            scheme,
            pager,
            state.plaintext_size,
            version=state.secure_version,
            chunk_versions=list(state.chunk_versions),
        )
        dictionary = TagDictionary(state.tags)
        stats = EncodingStats()
        (
            stats.total_bytes,
            stats.text_bytes,
            stats.dictionary_bytes,
            stats.fixpoint_rounds,
        ) = state.stats
        data = LazyPlaintext(
            lambda secure=secure, scheme=scheme: _decrypt_all(scheme, secure),
            state.plaintext_size,
        )
        encoded = EncodedDocument(data, dictionary, stats, state.root_offset)
        index = state.index_cache
        if index is None and state.index_span is not None:
            try:
                index = parse_structural_index(
                    self._read_span(self._generation, *state.index_span)
                )
                state.index_cache = index
            except (StructuralIndexError, IntegrityError, StoreError):
                # A damaged blob only costs the acceleration, never the
                # document: null the span so we stop retrying.
                state.index_span = None
                self.counters["index_blobs_dropped"] += 1
        prepared = PreparedDocument(encoded, scheme, secure, index=index)
        state.handle = StoredDocument(prepared, state.key, state.version)
        return state.handle

    def __contains__(self, document_id: str) -> bool:
        with self._lock:
            return document_id in self._states

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._states)

    def versions(self) -> Dict[str, int]:
        with self._lock:
            return {
                document_id: state.version
                for document_id, state in self._states.items()
            }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._log.flush()
            os.fsync(self._log.fileno())
            self._manifest.flush()
            os.fsync(self._manifest.fileno())

    def compact(self) -> Dict[str, int]:
        """Rewrite the live records into a fresh generation.

        Dead weight — superseded chunk records and superseded manifest
        entries — is dropped; the swap is crash-safe because the new
        generation is fully written and fsync'd before ``CURRENT`` is
        atomically replaced (a crash at any point leaves a consistent
        store: either still the old generation or entirely the new).
        """
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            old_generation = self._generation
            old_size = self._log_size
            new_generation = old_generation + 1
            old_log, old_manifest, old_map = self._log, self._manifest, self._map
            old_segments = self._segments
            states = list(self._states.values())
            # Materialize every live document's records *before*
            # switching files (reads go through the old generation).
            materialized = []
            for state in states:
                record_size = self._record_size_of(state)
                chunk_count = len(state.chunk_versions)
                pager = ChunkPager(
                    self, state.runs, record_size, chunk_count * record_size
                )
                # Index blobs must cross the generation too; read them
                # while the old generation is still the live one.
                blob = None
                if state.index_cache is not None:
                    blob = state.index_cache.to_bytes()
                elif state.index_span is not None:
                    blob = self._read_span(
                        self._generation, *state.index_span
                    )
                materialized.append((state, record_size, bytes(pager), blob))
            self._generation = new_generation
            self._segments = []
            self._segment_offsets = []
            self._log_size = 0
            self._pages.clear()
            self._page_bytes = 0
            if old_map is not None:
                self._retired_maps.append(old_map)
            self._map = None
            self._map_size = 0
            self._log = open(self._chunk_path(new_generation), "a+b")
            self._manifest = open(self._manifest_path(new_generation), "a+b")
            for state, record_size, stored, blob in materialized:
                fresh = _DocState()
                for field in _DocState.__slots__:
                    if field != "handle":
                        setattr(fresh, field, getattr(state, field))
                fresh.handle = None
                # The old generation's blob offset is meaningless here;
                # re-append the blob into the new log.
                fresh.index_span = None
                fresh.runs = self._append_records(
                    state.document_id,
                    state.version,
                    0,
                    _iter_record_bytes(stored, record_size),
                    record_size,
                )
                if blob is not None:
                    offset = self._append_segment(
                        state.document_id,
                        state.version,
                        INDEX_RECORD,
                        blob,
                    )
                    fresh.index_span = (offset, len(blob))
                self._commit(fresh)
                self._states[state.document_id] = fresh
            self.flush()
            self._write_current(new_generation)
            old_log.close()
            old_manifest.close()
            for path in (
                self._chunk_path(old_generation),
                self._manifest_path(old_generation),
            ):
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best effort
                    pass
            self.counters["compactions"] += 1
            return {
                "generation": new_generation,
                "documents": len(self._states),
                "log_bytes_before": old_size,
                "log_bytes_after": self._log_size,
                "segments_before": len(old_segments),
                "segments_after": len(self._segments),
                "reclaimed_bytes": max(0, old_size - self._log_size),
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._closed = True
            if self._map is not None:
                self._map.close()
                self._map = None
            for retired in self._retired_maps:
                retired.close()
            self._retired_maps = []
            self._log.close()
            self._manifest.close()
            try:
                import fcntl

                fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_UN)
            except (ImportError, OSError):  # pragma: no cover
                pass
            self._lock_file.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def describe(self) -> Dict[str, object]:
        with self._lock:
            live_bytes = 0
            for state in self._states.values():
                record = self._record_size_of(state)
                live_bytes += len(state.chunk_versions) * record
            info: Dict[str, object] = {
                "kind": self.kind,
                "persistent": self.persistent,
                "directory": self.directory,
                "generation": self._generation,
                "sync": self.sync,
                "documents": len(self._states),
                "log_bytes": self._log_size,
                "live_bytes": live_bytes,
                "segments": len(self._segments),
                "cache_budget_bytes": self.cache_bytes,
                "cache_used_bytes": self._page_bytes,
                "cache_entries": len(self._pages),
            }
            info.update(self.counters)
            return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LogStore(%r, gen %d, %d documents, %d log bytes)" % (
            self.directory,
            self._generation,
            len(self._states),
            self._log_size,
        )


# ----------------------------------------------------------------------
# Record slicing helpers
# ----------------------------------------------------------------------
def _record_size(secure: SecureDocument) -> int:
    layout = secure.layout
    digest = layout.digest_size if secure.scheme.has_digest else 0
    return layout.chunk_size + digest


def _record_slices(secure: SecureDocument):
    """Yield every chunk record of an in-memory document, in order."""
    record = _record_size(secure)
    stored = secure.stored
    for start in range(0, len(stored), record):
        yield bytes(stored[start : start + record])


def _changed_record_slices(
    secure: SecureDocument, indexes: List[int], record: int
):
    stored = secure.stored
    for index in indexes:
        yield bytes(stored[index * record : (index + 1) * record])


def _iter_record_bytes(stored: bytes, record: int):
    for start in range(0, len(stored), record):
        yield stored[start : start + record]


def _extend_run(
    runs: List[Tuple[int, int, int]], index: int, offset: int
) -> None:
    runs.append((index, 1, offset))


def _coalesce_runs(
    runs: List[Tuple[int, int, int]], record_size: int
) -> List[Tuple[int, int, int]]:
    """Merge runs that are contiguous in record index *and* file offset."""
    merged: List[Tuple[int, int, int]] = []
    for first, count, offset in sorted(runs):
        if merged:
            m_first, m_count, m_offset = merged[-1]
            if (
                first == m_first + m_count
                and offset == m_offset + m_count * record_size
            ):
                merged[-1] = (m_first, m_count + count, m_offset)
                continue
        merged.append((first, count, offset))
    return merged


def _decrypt_all(scheme, secure: SecureDocument) -> bytes:
    """Full plaintext of a stored document (the update path's loader)."""
    reader = scheme.reader(secure, Meter())
    size = secure.plaintext_size
    step = scheme.layout.chunk_size
    parts = []
    for offset in range(0, size, step):
        parts.append(reader.read(offset, min(step, size - offset)))
    return b"".join(parts)
