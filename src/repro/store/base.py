"""The chunk-store contract and its in-memory reference implementation.

A :class:`ChunkStore` owns the station's published documents: the
mapping ``document_id -> (PreparedDocument, document key, version)``
and nothing else (grants, plans and view caches stay in the station —
they are derived state, rebuilt from policies on restart).  The
interface is deliberately small; everything the engine, server,
cluster and CLI layers need goes through it:

``put``
    Register (or re-publish) a document at a version.  Returns the
    :class:`~repro.soe.session.PreparedDocument` the station must serve
    from — a disk-backed store hands back a handle whose chunk records
    are read lazily through its page cache, an in-memory store returns
    the object unchanged.
``apply_update``
    Commit the copy-on-write result of one
    :meth:`SecureStation.update`: the new snapshot plus which chunks
    were re-encrypted, so an append-only store writes only the dirty
    records.
``get``
    One atomic read of ``(prepared, key, version)`` — the snapshot a
    request evaluates and the version it reports must come from the
    same read.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.soe.session import PreparedDocument


class StoreError(RuntimeError):
    """Store misuse or an unrecoverable storage fault."""


class StoredDocument:
    """One store entry: the served snapshot plus its trusted metadata."""

    __slots__ = ("prepared", "key", "version")

    def __init__(self, prepared: PreparedDocument, key: bytes, version: int):
        self.prepared = prepared
        self.key = key
        self.version = version

    def as_tuple(self) -> Tuple[PreparedDocument, bytes, int]:
        return self.prepared, self.key, self.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StoredDocument(v%d, %s)" % (self.version, self.prepared)


class ChunkStore:
    """Abstract document store behind :class:`SecureStation`."""

    kind = "abstract"
    #: Does the corpus survive process death?
    persistent = False

    def bind_backend(self, backend) -> None:
        """Attach the station's compute backend (disk stores rebuild
        cipher schemes at load time and want the accelerated factories;
        the in-memory store keeps live objects and needs nothing)."""

    # -- document lifecycle --------------------------------------------
    def put(
        self,
        document_id: str,
        prepared: PreparedDocument,
        key: bytes,
        version: int,
    ) -> PreparedDocument:
        raise NotImplementedError

    def put_stream(
        self,
        document_id: str,
        encoded,
        scheme,
        key: bytes,
        version: int,
        index=None,
    ) -> PreparedDocument:
        """Publish straight from the scheme's record generator.

        The default materializes (``scheme.protect``) and delegates to
        :meth:`put`; a disk store overrides it to stream chunk records
        into its log without ever holding the whole ciphertext.
        ``index`` is the document's optional structural index; stores
        persist it alongside the chunks.
        """
        from repro.soe.session import PreparedDocument as _Prepared

        secure = scheme.protect(encoded.data, version=version)
        return self.put(
            document_id,
            _Prepared(encoded, scheme, secure, index=index),
            key,
            version,
        )

    def apply_update(
        self,
        document_id: str,
        prepared: PreparedDocument,
        version: int,
        dirty_chunks: Optional[Set[int]] = None,
    ) -> PreparedDocument:
        raise NotImplementedError

    def get(self, document_id: str) -> Optional[StoredDocument]:
        raise NotImplementedError

    # -- catalogue ------------------------------------------------------
    def __contains__(self, document_id: str) -> bool:
        raise NotImplementedError

    def ids(self) -> List[str]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())

    def __len__(self) -> int:
        return len(self.ids())

    def versions(self) -> Dict[str, int]:
        raise NotImplementedError

    def version(self, document_id: str) -> Optional[int]:
        entry = self.get(document_id)
        return None if entry is None else entry.version

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Make every committed mutation durable (no-op in memory)."""

    def close(self) -> None:
        """Release file handles / maps.  Must be idempotent."""

    @property
    def closed(self) -> bool:
        return False

    def describe(self) -> Dict[str, object]:
        """Operational snapshot for STATS / ``repro_store_*`` metrics."""
        return {"kind": self.kind, "persistent": self.persistent}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(%d documents)" % (type(self).__name__, len(self))


class MemoryStore(ChunkStore):
    """The seed behaviour as a store: a guarded in-process dict.

    ``put`` detaches documents whose stored bytes live in *another*
    store's log (a cluster repair copying a replica hands the target a
    pager-backed :class:`PreparedDocument`): a memory replica must
    never alias a file mapping it does not own, so the bytes are
    materialized into a plain in-memory document.  Ordinary publishes
    pass through untouched — byte- and object-identical to the
    pre-store station.
    """

    kind = "memory"
    persistent = False

    def __init__(self):
        self._documents: Dict[str, StoredDocument] = {}
        self._lock = threading.Lock()
        self._closed = False

    def put(
        self,
        document_id: str,
        prepared: PreparedDocument,
        key: bytes,
        version: int,
    ) -> PreparedDocument:
        if self._closed:
            raise StoreError("store is closed")
        prepared = _detach(prepared)
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            self._documents[document_id] = StoredDocument(prepared, key, version)
        return prepared

    def apply_update(
        self,
        document_id: str,
        prepared: PreparedDocument,
        version: int,
        dirty_chunks: Optional[Set[int]] = None,
    ) -> PreparedDocument:
        with self._lock:
            if self._closed:
                raise StoreError("store is closed")
            entry = self._documents.get(document_id)
            if entry is None:
                raise StoreError("unknown document %r" % document_id)
            self._documents[document_id] = StoredDocument(
                prepared, entry.key, version
            )
        return prepared

    def get(self, document_id: str) -> Optional[StoredDocument]:
        with self._lock:
            return self._documents.get(document_id)

    def __contains__(self, document_id: str) -> bool:
        with self._lock:
            return document_id in self._documents

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._documents)

    def versions(self) -> Dict[str, int]:
        with self._lock:
            return {
                document_id: entry.version
                for document_id, entry in self._documents.items()
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def describe(self) -> Dict[str, object]:
        with self._lock:
            documents = len(self._documents)
            stored = sum(
                entry.prepared.secure.stored_size()
                for entry in self._documents.values()
            )
        return {
            "kind": self.kind,
            "persistent": self.persistent,
            "documents": documents,
            "stored_bytes": stored,
        }


def _detach(prepared: PreparedDocument) -> PreparedDocument:
    """Materialize a pager-backed document into plain process memory."""
    from repro.crypto.integrity import SecureDocument

    stored = prepared.secure.stored
    if isinstance(stored, (bytes, bytearray, memoryview)):
        return prepared
    secure = SecureDocument(
        prepared.secure.scheme,
        bytes(stored),
        prepared.secure.plaintext_size,
        version=prepared.secure.version,
        chunk_versions=list(prepared.secure.chunk_versions),
    )
    encoded = prepared.encoded
    data = encoded.data
    if not isinstance(data, (bytes, bytearray, memoryview)):
        from repro.skipindex.encoder import EncodedDocument

        encoded = EncodedDocument(
            bytes(data), encoded.dictionary, encoded.stats, encoded.root_offset
        )
    return PreparedDocument(
        encoded, prepared.secure.scheme, secure, index=prepared.index
    )
