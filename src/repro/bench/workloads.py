"""Benchmark-scale documents and policies, built once and shared.

The paper's documents range from 350 KB (Sigmod) to 59 MB (Treebank);
a pure-Python pipeline cannot chew 59 MB in a benchmark suite, so every
document is scaled down while preserving its *shape* (Table 2 ratios,
depth profile, tag alphabet).  The scale factors below give documents
of roughly 20 KB–500 KB encoded, which exercise hundreds of chunks —
enough for every effect the paper measures (skip locality, chunk
granularity, pending read-backs) to be visible.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.accesscontrol.model import Policy
from repro.datasets import (
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    generate_sigmod,
    generate_treebank,
    generate_wsu,
    random_policy_for,
    researcher_policy,
    secretary_policy,
)
from repro.datasets.hospital import GROUPS
from repro.engine.plans import PolicyPlan, compile_policy
from repro.skipindex.encoder import EncodedDocument, encode_document
from repro.soe.session import PreparedDocument, prepare_document
from repro.xmlkit.dom import Node


class Workloads:
    """Lazily-built, memoized benchmark inputs."""

    #: (folders, doctors) for the benchmark Hospital document.
    HOSPITAL_CONFIG = HospitalConfig(
        folders=400, doctors=12, acts_per_folder=6, seed=42
    )
    WSU_SCALE = 2.0
    SIGMOD_SCALE = 4.0
    TREEBANK_SCALE = 1.5

    _instance: Optional["Workloads"] = None

    def __init__(self):
        self._documents: Dict[str, Node] = {}
        self._encoded: Dict[str, EncodedDocument] = {}
        self._prepared: Dict[Tuple[str, str], PreparedDocument] = {}
        self._plans: Dict[str, PolicyPlan] = {}

    @classmethod
    def shared(cls) -> "Workloads":
        """Process-wide instance (documents are expensive to rebuild)."""
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance

    # ------------------------------------------------------------------
    def document(self, name: str) -> Node:
        if name not in self._documents:
            if name == "hospital":
                self._documents[name] = generate_hospital(self.HOSPITAL_CONFIG)
            elif name == "wsu":
                self._documents[name] = generate_wsu(self.WSU_SCALE)
            elif name == "sigmod":
                self._documents[name] = generate_sigmod(self.SIGMOD_SCALE)
            elif name == "treebank":
                self._documents[name] = generate_treebank(self.TREEBANK_SCALE)
            else:
                raise KeyError("unknown document %r" % name)
        return self._documents[name]

    def encoded(self, name: str) -> EncodedDocument:
        if name not in self._encoded:
            self._encoded[name] = encode_document(self.document(name))
        return self._encoded[name]

    def prepared(self, name: str, scheme: str = "ECB") -> PreparedDocument:
        key = (name, scheme)
        if key not in self._prepared:
            self._prepared[key] = prepare_document(self.document(name), scheme=scheme)
        return self._prepared[key]

    # ------------------------------------------------------------------
    # The profiles of Section 7
    # ------------------------------------------------------------------
    def profile(self, name: str) -> Policy:
        if name == "secretary":
            return secretary_policy()
        if name == "doctor":
            return doctor_policy("doctor0")
        if name == "researcher":
            return researcher_policy()  # all 10 protocol groups
        # Fig. 10's five views:
        if name == "part-time-doctor":
            # Few patients: a physician id that rarely signs acts.
            return doctor_policy("doctor11")
        if name == "full-time-doctor":
            return doctor_policy("doctor0")
        if name == "junior-researcher":
            return researcher_policy(GROUPS[:1])
        if name == "senior-researcher":
            return researcher_policy(GROUPS[:5])
        raise KeyError("unknown profile %r" % name)

    def plan(self, name: str) -> PolicyPlan:
        """Compiled (memoized) plan of a Section 7 profile — the form
        the benchmark sessions consume, so no experiment ever pays
        rule compilation inside its measured region twice."""
        if name not in self._plans:
            self._plans[name] = compile_policy(self.profile(name))
        return self._plans[name]

    def random_policy(self, document: str, rules: int = 8, seed: int = 1) -> Policy:
        return random_policy_for(self.document(document), rules=rules, seed=seed)
