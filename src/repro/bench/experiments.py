"""Experiment drivers: one function per paper table/figure.

Every function returns a dict with ``headers``/``rows`` (plus extra
series where applicable) so the pytest benches and the EXPERIMENTS.md
generator share one source of truth.  Paper reference values are
embedded where the paper states them, for side-by-side reporting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.reporting import format_output, human_bytes
from repro.bench.workloads import Workloads
from repro.engine.plans import compile_policy
from repro.metrics import Meter
from repro.skipindex.variants import encoding_report
from repro.soe.costmodel import CONTEXTS
from repro.soe.session import SecureSession, lwb_seconds
from repro.xmlkit.serializer import serialize

MB = 1_000_000.0


# ----------------------------------------------------------------------
# Table 1 — communication and decryption costs
# ----------------------------------------------------------------------
def table1_costs() -> Dict[str, object]:
    """The platform contexts (constants of the cost model)."""
    paper = {
        "smartcard": (0.5, 0.15),
        "sw-internet": (0.1, 1.2),
        "sw-lan": (10.0, 1.2),
    }
    rows = []
    for key, context in CONTEXTS.items():
        paper_comm, paper_dec = paper[key]
        rows.append(
            (
                context.name,
                "%.2f MB/s" % (context.communication_bps / MB),
                "%.2f MB/s" % (context.decryption_bps / MB),
                "%.2f / %.2f" % (paper_comm, paper_dec),
            )
        )
    return {
        "headers": ["Context", "Communication", "Decryption", "Paper (comm/dec)"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table 2 — document characteristics
# ----------------------------------------------------------------------
#: Paper's Table 2 (size, text, max depth, avg depth, tags, text nodes,
#: elements) — absolute sizes differ because our documents are scaled.
TABLE2_PAPER = {
    "wsu": ("1.3 MB", "210 KB", 4, 3.1, 20, 48820, 74557),
    "sigmod": ("350 KB", "146 KB", 6, 5.1, 11, 8383, 11526),
    "treebank": ("59 MB", "33 MB", 36, 7.8, 250, 1391845, 2437666),
    "hospital": ("3.6 MB", "2.1 MB", 8, 6.8, 89, 98310, 117795),
}


def table2_documents(workloads: Optional[Workloads] = None) -> Dict[str, object]:
    workloads = workloads or Workloads.shared()
    rows = []
    for name in ["wsu", "sigmod", "treebank", "hospital"]:
        doc = workloads.document(name)
        size = len(serialize(doc).encode("utf-8"))
        paper = TABLE2_PAPER[name]
        rows.append(
            (
                name,
                human_bytes(size),
                human_bytes(doc.text_size()),
                doc.max_depth(),
                round(doc.average_depth(), 1),
                len(doc.distinct_tags()),
                doc.count_text_nodes(),
                doc.count_elements(),
                "%s/%s d%s avg%s tags%s"
                % (paper[0], paper[1], paper[2], paper[3], paper[4]),
            )
        )
    return {
        "headers": [
            "Document", "Size", "Text", "MaxDepth", "AvgDepth",
            "Tags", "TextNodes", "Elements", "Paper (scaled doc)",
        ],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Fig. 8 — index storage overhead (struct / text %)
# ----------------------------------------------------------------------
#: Paper's Fig. 8 bars (struct/text %), per dataset, per variant.
FIG8_PAPER = {
    "wsu": {"NC": 542, "TC": 77, "TCS": 106, "TCSB": 142, "TCSBR": 82},
    "sigmod": {"NC": 142, "TC": 16, "TCS": 24, "TCSB": 31, "TCSBR": 15},
    "treebank": {"NC": 77, "TC": 15, "TCS": 36, "TCSB": 254, "TCSBR": 23},
    "hospital": {"NC": 67, "TC": 11, "TCS": 16, "TCSB": 38, "TCSBR": 14},
}

VARIANT_ORDER = ["NC", "TC", "TCS", "TCSB", "TCSBR"]


def fig8_index_overhead(workloads: Optional[Workloads] = None) -> Dict[str, object]:
    workloads = workloads or Workloads.shared()
    rows = []
    measured: Dict[str, Dict[str, float]] = {}
    for name in ["wsu", "sigmod", "treebank", "hospital"]:
        doc = workloads.document(name)
        report = encoding_report(doc)
        ratios = {
            variant: 100.0 * stats.struct_text_ratio()
            for variant, stats in report.items()
        }
        measured[name] = ratios
        for variant in VARIANT_ORDER:
            rows.append(
                (
                    name,
                    variant,
                    round(ratios[variant], 1),
                    FIG8_PAPER[name][variant],
                )
            )
    return {
        "headers": ["Document", "Encoding", "Struct/Text % (measured)", "Paper %"],
        "rows": rows,
        "measured": measured,
    }


# ----------------------------------------------------------------------
# Fig. 9 — access control overhead (BF / TCSBR / LWB)
# ----------------------------------------------------------------------
#: Paper's Fig. 9 absolute seconds (2.5 MB compressed Hospital).
FIG9_PAPER = {
    "secretary": {"BF": 19.5, "TCSBR": 1.4, "LWB": 1.3},
    "doctor": {"BF": 20.4, "TCSBR": 6.4, "LWB": 5.8},
    "researcher": {"BF": 19.5, "TCSBR": 2.4, "LWB": 1.8},
}


def fig9_access_control(
    workloads: Optional[Workloads] = None, context: str = "smartcard"
) -> Dict[str, object]:
    workloads = workloads or Workloads.shared()
    prepared = workloads.prepared("hospital", "ECB")
    rows = []
    details: Dict[str, Dict[str, object]] = {}
    for profile in ["secretary", "doctor", "researcher"]:
        policy = workloads.plan(profile)
        tcsbr = SecureSession(prepared, policy, context=context).run()
        brute = SecureSession(
            prepared, policy, context=context, use_skip_index=False
        ).run()
        lwb = lwb_seconds(tcsbr.events, context)
        shares = tcsbr.breakdown.shares()
        paper = FIG9_PAPER[profile]
        rows.append(
            (
                profile,
                round(brute.seconds, 3),
                round(tcsbr.seconds, 3),
                round(lwb, 3),
                round(brute.seconds / lwb, 1) if lwb else float("inf"),
                round(tcsbr.seconds / lwb, 2) if lwb else float("inf"),
                "%.0f/%.0f/%.0f" % (
                    100 * shares["decryption"],
                    100 * shares["communication"],
                    100 * shares["access_control"],
                ),
                "BF/LWB=%.1f TCSBR/LWB=%.2f"
                % (paper["BF"] / paper["LWB"], paper["TCSBR"] / paper["LWB"]),
            )
        )
        details[profile] = {
            "tcsbr": tcsbr,
            "bf_seconds": brute.seconds,
            "lwb_seconds": lwb,
        }
    return {
        "headers": [
            "Profile", "BF (s)", "TCSBR (s)", "LWB (s)",
            "BF/LWB", "TCSBR/LWB", "dec/comm/ac %", "Paper ratios",
        ],
        "rows": rows,
        "details": details,
    }


# ----------------------------------------------------------------------
# Fig. 10 — impact of queries (exec time vs result size)
# ----------------------------------------------------------------------
FIG10_VIEWS = [
    ("Sec", "secretary"),
    ("PTD", "part-time-doctor"),
    ("FTD", "full-time-doctor"),
    ("JR", "junior-researcher"),
    ("SR", "senior-researcher"),
]

FIG10_THRESHOLDS = [95, 85, 70, 55, 40, 20, 0]


def fig10_queries(
    workloads: Optional[Workloads] = None, context: str = "smartcard"
) -> Dict[str, object]:
    workloads = workloads or Workloads.shared()
    prepared = workloads.prepared("hospital", "ECB")
    series: Dict[str, List[Tuple[float, float]]] = {}
    rows = []
    for label, profile in FIG10_VIEWS:
        policy = workloads.plan(profile)
        points: List[Tuple[float, float]] = []
        for threshold in FIG10_THRESHOLDS:
            query = "//Folder[//Age > %d]" % threshold
            result = SecureSession(
                prepared, policy, query=query, context=context
            ).run()
            result_kb = result.result_bytes / 1000.0
            points.append((result_kb, result.seconds))
            rows.append((label, threshold, round(result_kb, 1), round(result.seconds, 3)))
        series[label] = points
    return {
        "headers": ["View", "Age >", "Result (KB)", "Time (s)"],
        "rows": rows,
        "series": series,
    }


def linear_fit(points: Sequence[Tuple[float, float]]) -> Tuple[float, float, float]:
    """Least-squares fit (slope, intercept, r2) — Fig. 10 linearity."""
    n = len(points)
    if n < 2:
        return 0.0, 0.0, 1.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    if sxx == 0:
        return 0.0, mean_y, 1.0
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in points)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return slope, intercept, r2


# ----------------------------------------------------------------------
# Fig. 11 — impact of integrity control
# ----------------------------------------------------------------------
#: Paper's Fig. 11 seconds per (profile, scheme).
FIG11_PAPER = {
    "secretary": {"ECB": 1.4, "CBC-SHA": 3.4, "CBC-SHAC": 2.4, "ECB-MHT": 1.9},
    "doctor": {"ECB": 6.4, "CBC-SHA": 18.6, "CBC-SHAC": 12.6, "ECB-MHT": 8.5},
    "researcher": {"ECB": 2.4, "CBC-SHA": 8.5, "CBC-SHAC": 5.2, "ECB-MHT": 3.3},
}

SCHEME_ORDER = ["ECB", "CBC-SHA", "CBC-SHAC", "ECB-MHT"]


def fig11_integrity(
    workloads: Optional[Workloads] = None, context: str = "smartcard"
) -> Dict[str, object]:
    workloads = workloads or Workloads.shared()
    rows = []
    measured: Dict[str, Dict[str, float]] = {}
    for profile in ["secretary", "doctor", "researcher"]:
        policy = workloads.plan(profile)
        times: Dict[str, float] = {}
        for scheme in SCHEME_ORDER:
            prepared = workloads.prepared("hospital", scheme)
            result = SecureSession(prepared, policy, context=context).run()
            times[scheme] = result.seconds
        measured[profile] = times
        for scheme in SCHEME_ORDER:
            rows.append(
                (
                    profile,
                    scheme,
                    round(times[scheme], 3),
                    round(times[scheme] / times["ECB"], 2),
                    FIG11_PAPER[profile][scheme],
                    round(FIG11_PAPER[profile][scheme] / FIG11_PAPER[profile]["ECB"], 2),
                )
            )
    return {
        "headers": [
            "Profile", "Scheme", "Time (s)", "vs ECB",
            "Paper (s)", "Paper vs ECB",
        ],
        "rows": rows,
        "measured": measured,
    }


# ----------------------------------------------------------------------
# Fig. 12 — throughput on real datasets
# ----------------------------------------------------------------------
FIG12_TARGETS = [
    ("sigmod", None),
    ("wsu", None),
    ("treebank", None),
    ("hospital", "secretary"),
    ("hospital", "doctor"),
    ("hospital", "researcher"),
]


def fig12_real_datasets(
    workloads: Optional[Workloads] = None, context: str = "smartcard"
) -> Dict[str, object]:
    workloads = workloads or Workloads.shared()
    rows = []
    measured: Dict[str, Dict[str, float]] = {}
    for document, profile in FIG12_TARGETS:
        if profile is None:
            policy = compile_policy(
                workloads.random_policy(document, rules=8, seed=17)
            )
            label = document
        else:
            policy = workloads.plan(profile)
            label = "%s/%s" % (document, profile[:4])

        # The paper's Fig. 12 throughput is authorized output produced
        # per second (e.g. Secretary: 135 KB view / 1.4 s = 96 KB/s).
        entry: Dict[str, float] = {}
        for with_integrity, scheme in [(False, "ECB"), (True, "ECB-MHT")]:
            prepared = workloads.prepared(document, scheme)
            result = SecureSession(prepared, policy, context=context).run()
            suffix = "int" if with_integrity else "noint"
            view_bytes = result.result_bytes
            entry["tcsbr-%s" % suffix] = (
                view_bytes / result.seconds / 1000.0 if result.seconds else 0.0
            )
            lwb = lwb_seconds(result.events, context, with_integrity=with_integrity)
            entry["lwb-%s" % suffix] = (
                view_bytes / lwb / 1000.0 if lwb > 0 else float("inf")
            )
        measured[label] = entry
        rows.append(
            (
                label,
                round(entry["tcsbr-int"], 1),
                round(entry["lwb-int"], 1),
                round(entry["tcsbr-noint"], 1),
                round(entry["lwb-noint"], 1),
            )
        )
    return {
        "headers": [
            "Workload",
            "TCSBR+Integrity (KB/s)",
            "LWB+Integrity (KB/s)",
            "TCSBR (KB/s)",
            "LWB (KB/s)",
        ],
        "rows": rows,
        "measured": measured,
        "paper_note": "paper: throughput 55-85 KB/s across documents, LWB above",
    }


# ----------------------------------------------------------------------
# Server load (post-paper: the repro.server network layer)
# ----------------------------------------------------------------------
def server_load(
    clients: int = 8, queries: int = 5, folders: int = 2
) -> Dict[str, object]:
    """Real wall-clock serving quality of the network layer.

    Starts an in-process :class:`~repro.server.service.StationServer`
    on an ephemeral port and drives it with the thread-based load
    generator; the row reports measured throughput and latency
    percentiles (not simulated seconds).
    """
    from repro.server.loadgen import run_load
    from repro.server.service import ServerThread, StationServer, hospital_station

    station, subjects = hospital_station(folders=folders)
    server = StationServer(station)
    thread = ServerThread(server)
    host, port = thread.start()
    try:
        report = run_load(
            host, port, clients=clients, queries=queries, subjects=subjects
        )
    finally:
        thread.stop()
        station.close()
    latency = report["latency_ms"]
    rows = [
        (
            clients,
            queries,
            report["requests"],
            report["errors"],
            "%.1f" % report["throughput_rps"],
            "%.1f" % latency["p50"],
            "%.1f" % latency["p95"],
            human_bytes(report["bytes_received"]),
        )
    ]
    return {
        "headers": [
            "Clients",
            "Queries/client",
            "Requests",
            "Errors",
            "Throughput (req/s)",
            "p50 (ms)",
            "p95 (ms)",
            "Received",
        ],
        "rows": rows,
        "report": report,
    }


# ----------------------------------------------------------------------
# Updates (post-paper: the live update path of Section 4.1)
# ----------------------------------------------------------------------
def _first_text_path(tree) -> Tuple[List[int], str]:
    """Index path of a reasonably deep element with direct text."""
    from repro.xmlkit.dom import Node

    best: Tuple[List[int], str] = ([], "")

    def visit(node, path):
        nonlocal best
        text = "".join(c for c in node.children if isinstance(c, str))
        if len(text) >= 4 and len(path) > len(best[0]):
            best = (list(path), text)
        for index, child in enumerate(
            c for c in node.children if isinstance(c, Node)
        ):
            visit(child, path + [index])

    visit(tree, [])
    return best


def updates_experiment(
    folders: int = 16, output: Optional[str] = "BENCH_updates.json"
) -> Dict[str, object]:
    """Live update costs: dirtied-chunk ratio, re-encrypted bytes, latency.

    Publishes the hospital document into a :class:`SecureStation` and
    applies one edit of each kind through the live
    :meth:`~repro.engine.station.SecureStation.update` path, measuring
    what fraction of the store each edit really re-encrypts.  Best-case
    edits (a same-length text change) touch a couple of chunks; a
    rename introducing a fresh tag grows the dictionary — the paper's
    worst case — and cascades into a full re-encryption.  The report
    lands in ``BENCH_updates.json``.
    """
    import json as _json
    import time as _time

    from repro.datasets.hospital import HospitalConfig, generate_hospital
    from repro.engine import SecureStation
    from repro.skipindex.updates import UpdateOp
    from repro.xmlkit.parser import parse_document

    from repro.xmlkit.serializer import serialize

    config = HospitalConfig(
        folders=folders,
        doctors=4,
        acts_per_folder=3,
        labresults_per_folder=2,
        seed=7,
    )
    tree = generate_hospital(config)

    # Edits early in the document shift every byte after them (the
    # whole tail re-encrypts); the interesting best-case numbers come
    # from edits that keep lengths stable or sit near the end.  Each op
    # runs against a fresh publication of the same document so the rows
    # are directly comparable.
    text_path, text = _first_text_path(tree)
    children = list(tree.element_children())
    last = len(children) - 1
    tail_path, tail_text = _first_text_path(children[last])
    ops = [
        ("text/same-length", UpdateOp.set_text(text_path, "#" * len(text))),
        (
            "insert/append",
            UpdateOp.insert([], parse_document(serialize(children[0]).strip())),
        ),
        ("delete/last", UpdateOp.delete([last])),
        (
            "text/grow-tail",
            UpdateOp.set_text([last] + tail_path, "x" * (len(tail_text) + 40)),
        ),
        ("rename/new-tag", UpdateOp.rename([0], "RenamedFolder")),
    ]
    rows = []
    records = []
    for label, op in ops:
        station = SecureStation()
        station.publish("hospital", tree)
        started = _time.perf_counter()
        result = station.update("hospital", op)
        latency_ms = (_time.perf_counter() - started) * 1000.0
        record = result.as_dict()
        record["op"] = label
        record["latency_ms"] = round(latency_ms, 2)
        records.append(record)
        rows.append(
            (
                label,
                result.impact.changed_bytes,
                result.chunks_reencrypted,
                result.total_chunks,
                "%.1f%%" % (100.0 * result.dirtied_ratio),
                human_bytes(result.reencrypted_bytes),
                "yes" if result.impact.is_worst_case else "no",
                round(latency_ms, 1),
            )
        )
        station.close()
    # One station takes an edit chain, exercising the version counter
    # end-to-end (every op bumps it by one).  grow-tail is excluded:
    # its path is only valid against the pristine tree.
    chained = SecureStation()
    chained.publish("hospital", tree)
    for label, op in ops:
        if label == "text/grow-tail":
            continue
        chained.update("hospital", op)
    report = {
        "bench": "updates",
        "document": "hospital",
        "folders": folders,
        "chained_version": chained.document_version("hospital"),
        "ops": records,
    }
    chained.close()
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2)
            handle.write("\n")
    return {
        "headers": [
            "Op",
            "Changed bytes",
            "Re-encrypted",
            "Total chunks",
            "Dirtied",
            "Rewritten",
            "Worst case",
            "Latency (ms)",
        ],
        "rows": rows,
        "report": report,
    }


# ----------------------------------------------------------------------
# Hot path (post-paper: view cache, skip-pruned replay, vectorized crypto)
# ----------------------------------------------------------------------
def _best_seconds(fn, repeats: int = 5) -> float:
    import time as _time

    best = float("inf")
    for _ in range(repeats):
        started = _time.perf_counter()
        fn()
        best = min(best, _time.perf_counter() - started)
    return best


def _crypto_microbench(buffer_bytes: int = 65536) -> List[Dict[str, object]]:
    """Whole-buffer modes vs the block-at-a-time reference, in MB/s.

    CBC encryption is inherently sequential (each block chains on the
    previous ciphertext), so its speedup comes only from the schedule
    precomputation and int-XOR; every other mode decrypts/encrypts the
    whole buffer through the SWAR lane path.
    """
    import random as _random

    from repro.crypto import modes
    from repro.crypto.xtea import Xtea

    rng = _random.Random(20260730)
    data = bytes(rng.randrange(256) for _ in range(buffer_bytes))
    cipher = Xtea(bytes(range(16)))
    iv = modes.make_iv(3)
    positioned = modes.encrypt_positioned(cipher, data, 0)
    chained = modes.encrypt_cbc(cipher, data, iv)
    # The per-chunk CBC regime the schemes actually run: independent
    # 2 KiB chains (one IV per chunk) encrypt in SWAR lockstep across
    # chunks, unlike the single whole-buffer chain above.
    chunk_list = [data[i : i + 2048] for i in range(0, len(data), 2048)]
    chunk_ivs = [modes.make_iv(i) for i in range(len(chunk_list))]
    cases = [
        ("ecb-encrypt", True,
         lambda: modes.encrypt_ecb(cipher, data),
         lambda: modes.encrypt_ecb_reference(cipher, data)),
        ("positioned-encrypt", True,
         lambda: modes.encrypt_positioned(cipher, data, 0),
         lambda: modes.encrypt_positioned_reference(cipher, data, 0)),
        ("positioned-decrypt", True,
         lambda: modes.decrypt_positioned(cipher, positioned, 0),
         lambda: modes.decrypt_positioned_reference(cipher, positioned, 0)),
        ("cbc-encrypt", False,
         lambda: modes.encrypt_cbc(cipher, data, iv),
         lambda: modes.encrypt_cbc_reference(cipher, data, iv)),
        ("cbc-encrypt-chunked", True,
         lambda: modes.encrypt_cbc_chunked(cipher, chunk_list, chunk_ivs),
         lambda: modes.encrypt_cbc_chunked_reference(cipher, chunk_list, chunk_ivs)),
        ("cbc-decrypt", True,
         lambda: modes.decrypt_cbc(cipher, chained, iv),
         lambda: modes.decrypt_cbc_reference(cipher, chained, iv)),
    ]
    results = []
    for name, parallel, fast, reference in cases:
        fast_mbps = buffer_bytes / _best_seconds(fast, repeats=3) / MB
        ref_mbps = buffer_bytes / _best_seconds(reference, repeats=2) / MB
        results.append(
            {
                "mode": name,
                "parallelizable": parallel,
                "fast_mbps": round(fast_mbps, 3),
                "reference_mbps": round(ref_mbps, 3),
                "speedup": round(fast_mbps / ref_mbps, 2) if ref_mbps else 0.0,
            }
        )
    return results


def _backend_microbench(
    buffer_bytes: int = 65536, document_bytes: int = 512 * 1024
) -> Dict[str, object]:
    """Compute-backend throughput: native kernels and the worker pool.

    The cipher section compares the C XTEA kernels against the
    pure-Python *fast* paths (not the block-at-a-time reference) on the
    two bulk modes the schemes run: positioned-ECB (random-access reads)
    and CBC (chained publish encryption).  ``native_vs_fast`` is the
    CBC-encrypt ratio — CBC's chain dependency defeats the SWAR trick
    entirely, so it is where moving the loop to C pays the most; the
    positioned ratio is reported alongside it.
    ``document.pool_vs_serial`` compares a warmed pool backend's
    whole-document protect + decrypt round trip against the serial
    in-process one; the serial side uses the auto backend (native when
    available), so the ratio isolates parallelism, not C-vs-Python.
    """
    import random as _random

    from repro.compute import (
        PoolBackend,
        auto_backend,
        available_backends,
        native_available,
    )
    from repro.crypto import modes
    from repro.crypto.integrity import make_scheme
    from repro.crypto.xtea import Xtea

    rng = _random.Random(20260807)
    data = bytes(rng.randrange(256) for _ in range(buffer_bytes))
    iv = modes.make_iv(7)
    pure = Xtea(bytes(range(16)))
    pure_pos_mbps = (
        buffer_bytes
        / _best_seconds(lambda: modes.encrypt_positioned(pure, data, 0), repeats=3)
        / MB
    )
    pure_cbc_mbps = (
        buffer_bytes
        / _best_seconds(lambda: modes.encrypt_cbc(pure, data, iv), repeats=3)
        / MB
    )
    out: Dict[str, object] = {
        "available": available_backends(),
        "cipher": {
            "mode": "cbc-encrypt",
            "pure_mbps": round(pure_cbc_mbps, 3),
            "positioned_pure_mbps": round(pure_pos_mbps, 3),
        },
    }
    if native_available():
        from repro.compute.native import NativeXtea

        native = NativeXtea(bytes(range(16)))
        native_pos_mbps = (
            buffer_bytes
            / _best_seconds(
                lambda: modes.encrypt_positioned(native, data, 0), repeats=3
            )
            / MB
        )
        native_cbc_mbps = (
            buffer_bytes
            / _best_seconds(lambda: modes.encrypt_cbc(native, data, iv), repeats=3)
            / MB
        )
        out["cipher"]["native_mbps"] = round(native_cbc_mbps, 3)
        out["cipher"]["positioned_native_mbps"] = round(native_pos_mbps, 3)
        out["cipher"]["native_vs_fast"] = (
            round(native_cbc_mbps / pure_cbc_mbps, 2) if pure_cbc_mbps else 0.0
        )
        out["cipher"]["positioned_native_vs_fast"] = (
            round(native_pos_mbps / pure_pos_mbps, 2) if pure_pos_mbps else 0.0
        )

    plaintext = bytes(rng.randrange(256) for _ in range(document_bytes))
    serial_scheme = make_scheme("CBC-SHAC", backend=auto_backend())

    def serial_round():
        document = serial_scheme.protect(plaintext)
        reader = serial_scheme.reader(document, Meter())
        reader.read(0, len(plaintext))

    serial_seconds = _best_seconds(serial_round, repeats=3)

    pool = PoolBackend()
    pool_scheme = make_scheme("CBC-SHAC", backend=pool)

    def pool_round():
        document = pool.protect_document(pool_scheme, plaintext, 0)
        if document is None:  # pool declined/died: serial fallback
            document = pool_scheme.protect(plaintext)
        plain = pool.decrypt_document(pool_scheme, document, Meter())
        if plain is None:
            reader = pool_scheme.reader(document, Meter())
            reader.read(0, len(plaintext))

    pool_round()  # warm the workers: fork + schedule setup is one-time
    pool_seconds = _best_seconds(pool_round, repeats=3)
    out["document"] = {
        "scheme": "CBC-SHAC",
        "bytes": document_bytes,
        "workers": pool.workers,
        "serial_mbps": round(document_bytes / serial_seconds / MB, 3),
        "pool_mbps": round(document_bytes / pool_seconds / MB, 3),
        "pool_vs_serial": round(serial_seconds / pool_seconds, 2)
        if pool_seconds
        else 0.0,
        "pool_fallbacks": pool.stats["fallbacks"],
    }
    pool.close()
    return out


def _evaluator_microbench(folders: int = 6) -> List[Dict[str, object]]:
    """Cold vs skip-pruned evaluator wall-clock + deterministic counters."""
    from repro.accesscontrol.evaluator import StreamingEvaluator
    from repro.accesscontrol.navigation import EventListNavigator
    from repro.datasets.hospital import (
        GROUPS,
        HospitalConfig,
        doctor_policy,
        generate_hospital,
        researcher_policy,
        secretary_policy,
    )
    from repro.engine.plans import compile_policy

    config = HospitalConfig(
        folders=folders,
        doctors=4,
        acts_per_folder=3,
        labresults_per_folder=2,
        seed=7,
    )
    tree = generate_hospital(config)
    events = list(tree.iter_events())
    profiles = [
        ("secretary", secretary_policy()),
        ("doctor", doctor_policy(config.doctor_names()[0])),
        ("researcher", researcher_policy(GROUPS[:3])),
    ]
    results = []
    for name, policy in profiles:
        plan = compile_policy(policy)
        entry: Dict[str, object] = {"profile": name, "input_events": len(events)}
        for label, prune in [("cold", False), ("pruned", True)]:
            # Fresh meter per repeat: the reported counters are those
            # of ONE evaluation, not the sum over the timing repeats.
            last_meter = [Meter()]

            def run(prune=prune, last_meter=last_meter):
                meter = Meter()
                last_meter[0] = meter
                evaluator = StreamingEvaluator(
                    plan, meter=meter, enable_pruning=prune
                )
                evaluator.run(
                    EventListNavigator(events, provide_meta=True, meter=meter)
                )

            seconds = _best_seconds(run)
            meter = last_meter[0]
            entry["%s_ms" % label] = round(seconds * 1000, 3)
            entry["%s_events_per_sec" % label] = round(len(events) / seconds)
            entry["%s_killed_tokens" % label] = meter.killed_tokens
            entry["%s_pruned_subtrees" % label] = meter.pruned_subtrees
        entry["speedup"] = round(entry["cold_ms"] / entry["pruned_ms"], 2)
        results.append(entry)
    return results


def hotpath_experiment(
    folders: int = 4,
    clients: int = 4,
    queries: int = 10,
    output: Optional[str] = "BENCH_hotpath.json",
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """End-to-end hot-path profile: crypto, pruning, view cache.

    Five coordinated measurements, one JSON report:

    1. **crypto** — whole-buffer mode throughput vs the block-at-a-time
       reference (the seed path);
    2. **backends** — native C kernel vs the pure fast path, and a
       warmed pool backend vs the serial whole-document round trip;
    3. **evaluator** — cold vs skip-pruned replay on the hospital
       document (wall-clock + the deterministic pruning counters);
    4. **station cold path** — ``SecureStation.evaluate`` with the view
       cache off, pruning off vs on;
    5. **serving** — the repeated-query loadgen workload against a live
       server with the view cache off vs on (real req/s), plus a mixed
       workload on the cached server with per-class hit rates.

    ``backend`` selects the station compute backend of the serving runs
    (``"all"`` leaves serving on auto — the per-backend comparison
    lives in the ``backends`` section either way) and is recorded in
    the report.

    The paper-figure benches (fig8–fig12) are untouched by all three
    optimizations: they run ``SecureSession`` — the cold path — and
    cached responses report the same simulated Table-1 seconds anyway.
    """
    import json as _json

    from repro.server.loadgen import run_load
    from repro.server.service import ServerThread, StationServer, hospital_station

    station_backend = None if backend in (None, "all", "auto") else backend
    crypto = _crypto_microbench()
    backends = _backend_microbench()
    evaluator = _evaluator_microbench()

    # --- station cold path: pruning off/on, cache off ------------------
    station_rows = []
    prune_entries: Dict[str, Dict[str, float]] = {}
    for prune in (False, True):
        station, subjects = hospital_station(
            folders=folders, backend=station_backend
        )
        station.cache_views = False
        station.prune = prune
        for subject in subjects:
            seconds = _best_seconds(
                lambda s=subject, st=station: st.evaluate("hospital", s)
            )
            entry = prune_entries.setdefault(subject, {})
            entry["pruned" if prune else "cold"] = seconds
        station.close()
    for subject, entry in prune_entries.items():
        station_rows.append(
            {
                "subject": subject,
                "cold_ms": round(entry["cold"] * 1000, 3),
                "pruned_ms": round(entry["pruned"] * 1000, 3),
                "speedup": round(entry["cold"] / entry["pruned"], 3),
            }
        )
    prune_speedup = max(row["speedup"] for row in station_rows)

    # --- serving: repeated-query loadgen, cache off vs on --------------
    serving: Dict[str, object] = {}
    for label, cache in [("uncached", False), ("cached", True)]:
        station, subjects = hospital_station(
            folders=folders, backend=station_backend
        )
        station.cache_views = cache
        thread = ServerThread(StationServer(station))
        host, port = thread.start()
        try:
            report = run_load(
                host, port, clients=clients, queries=queries, subjects=subjects
            )
        finally:
            thread.stop()
        serving[label] = {
            "throughput_rps": report["throughput_rps"],
            "p50_ms": report["latency_ms"]["p50"],
            "p95_ms": report["latency_ms"]["p95"],
            "requests": report["requests"],
            "errors": report["errors"],
            "cached_hits": report["cached_hits"],
            "view_hits": station.stats.view_hits,
            "view_misses": station.stats.view_misses,
        }
        station.close()
    cached_speedup = (
        serving["cached"]["throughput_rps"]
        / serving["uncached"]["throughput_rps"]
        if serving["uncached"]["throughput_rps"]
        else 0.0
    )

    # --- mixed workload on a cached server (per-class honesty) ---------
    station, subjects = hospital_station(folders=folders, backend=station_backend)
    thread = ServerThread(StationServer(station))
    host, port = thread.start()
    try:
        mix = [
            (subjects[0], None, 4.0),
            (subjects[1], None, 2.0),
            (subjects[2], "//Folder[//Age > 60]", 1.0),
        ]
        mixed = run_load(
            host,
            port,
            clients=clients,
            queries=queries,
            subjects=subjects,
            mix=mix,
            seed=7,
        )
    finally:
        thread.stop()
        station.close()

    parallel_speedups = [
        case["speedup"] for case in crypto if case["parallelizable"]
    ]
    ratios = {
        # Minimum across the whole-buffer (parallelizable) modes; CBC
        # encryption is chained by construction and reported separately.
        "crypto_speedup_min": min(parallel_speedups),
        "prune_speedup": prune_speedup,
        "cached_speedup": round(cached_speedup, 2),
        # Backend ratios: None when that backend cannot run here (no
        # compiler for native); the CI guards skip accordingly.
        "native_vs_fast": backends["cipher"].get("native_vs_fast"),
        "pool_vs_serial": backends["document"]["pool_vs_serial"],
    }
    report = {
        "bench": "hotpath",
        "folders": folders,
        "clients": clients,
        "queries_per_client": queries,
        "backend": backend or "auto",
        "crypto": crypto,
        "backends": backends,
        "evaluator": evaluator,
        "station_cold_path": station_rows,
        "serving": serving,
        "mixed_workload": {
            "throughput_rps": mixed["throughput_rps"],
            "cached_hits": mixed["cached_hits"],
            "requests": mixed["requests"],
            "errors": mixed["errors"],
            "classes": mixed["classes"],
        },
        "ratios": ratios,
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2)
            handle.write("\n")
    rows = [
        ("crypto MB/s (min parallelizable speedup)", "x%.1f" % ratios["crypto_speedup_min"]),
        (
            "native kernels vs pure fast path",
            "x%.1f (%s)"
            % (ratios["native_vs_fast"], backends["cipher"]["mode"])
            if ratios["native_vs_fast"] is not None
            else "unavailable (no C compiler)",
        ),
        (
            "pool vs serial whole-document",
            "x%.2f on %d workers"
            % (ratios["pool_vs_serial"], backends["document"]["workers"]),
        ),
        ("station cold path (best prune speedup)", "x%.2f" % ratios["prune_speedup"]),
        (
            "serving throughput cached vs uncached",
            "x%.1f (%.0f -> %.0f req/s)"
            % (
                ratios["cached_speedup"],
                serving["uncached"]["throughput_rps"],
                serving["cached"]["throughput_rps"],
            ),
        ),
        (
            "mixed workload",
            "%.0f req/s, %d/%d cached"
            % (
                mixed["throughput_rps"],
                mixed["cached_hits"],
                mixed["requests"],
            ),
        ),
    ]
    return {
        "headers": ["Hot-path measurement", "Result"],
        "rows": rows,
        "report": report,
    }


def render(experiment: Dict[str, object], title: str, fmt: str = "table") -> str:
    return format_output(
        experiment["rows"], experiment["headers"], fmt=fmt, title=title
    )
