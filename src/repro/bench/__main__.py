"""Run every experiment and print the paper-vs-measured tables.

Usage::

    python -m repro.bench            # all experiments
    python -m repro.bench fig9 fig11 # a subset
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import (
    fig8_index_overhead,
    fig9_access_control,
    fig10_queries,
    fig11_integrity,
    fig12_real_datasets,
    render,
    table1_costs,
    table2_documents,
)

EXPERIMENTS = {
    "table1": ("Table 1 - communication and decryption costs", table1_costs),
    "table2": ("Table 2 - document characteristics", table2_documents),
    "fig8": ("Figure 8 - index storage overhead", fig8_index_overhead),
    "fig9": ("Figure 9 - access control overhead", fig9_access_control),
    "fig10": ("Figure 10 - impact of queries", fig10_queries),
    "fig11": ("Figure 11 - impact of integrity control", fig11_integrity),
    "fig12": ("Figure 12 - performance on real datasets", fig12_real_datasets),
}


def main(argv) -> int:
    selected = argv or list(EXPERIMENTS)
    for key in selected:
        if key not in EXPERIMENTS:
            print("unknown experiment %r (choose from %s)" % (key, list(EXPERIMENTS)))
            return 2
    for key in selected:
        title, fn = EXPERIMENTS[key]
        start = time.time()
        data = fn()
        elapsed = time.time() - start
        print()
        print(render(data, title=title))
        print("(computed in %.1fs)" % elapsed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
