"""Run every experiment and print the paper-vs-measured tables.

Usage::

    python -m repro.bench                       # all experiments
    python -m repro.bench fig9 fig11            # a subset
    python -m repro.bench --format csv fig9     # machine-readable
    python -m repro.bench --format json         # one JSON object

The default ``table`` format is the aligned-markdown form; ``csv``
emits one header+rows block per experiment and ``json`` a single JSON
object keyed by experiment name.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import (
    fig8_index_overhead,
    fig9_access_control,
    fig10_queries,
    fig11_integrity,
    fig12_real_datasets,
    hotpath_experiment,
    render,
    server_load,
    table1_costs,
    table2_documents,
    updates_experiment,
)
from repro.bench.reporting import FORMATS

EXPERIMENTS = {
    "table1": ("Table 1 - communication and decryption costs", table1_costs),
    "table2": ("Table 2 - document characteristics", table2_documents),
    "fig8": ("Figure 8 - index storage overhead", fig8_index_overhead),
    "fig9": ("Figure 9 - access control overhead", fig9_access_control),
    "fig10": ("Figure 10 - impact of queries", fig10_queries),
    "fig11": ("Figure 11 - impact of integrity control", fig11_integrity),
    "fig12": ("Figure 12 - performance on real datasets", fig12_real_datasets),
    "server": ("Server load - repro.server over localhost TCP", server_load),
    "updates": ("Updates - live dirty-chunk re-encryption costs", updates_experiment),
    "hotpath": ("Hot path - view cache, skip-pruned replay, vectorized crypto", hotpath_experiment),
}


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench", description="run the paper's experiments"
    )
    parser.add_argument("experiments", nargs="*", metavar="experiment")
    parser.add_argument("--format", choices=FORMATS, default="table")
    parser.add_argument(
        "--backend",
        choices=["pure", "native", "pool", "all", "auto"],
        help="compute backend for the hotpath experiment",
    )
    args = parser.parse_args(argv)
    fmt = args.format
    selected = args.experiments or list(EXPERIMENTS)
    for key in selected:
        if key not in EXPERIMENTS:
            print("unknown experiment %r (choose from %s)" % (key, list(EXPERIMENTS)))
            return 2
    collected = {}
    for key in selected:
        title, fn = EXPERIMENTS[key]
        start = time.time()
        if key == "hotpath" and args.backend:
            data = fn(backend=args.backend)
        else:
            data = fn()
        elapsed = time.time() - start
        if fmt == "json":
            collected[key] = json.loads(render(data, title=title, fmt="json"))
            collected[key]["seconds"] = round(elapsed, 3)
        else:
            if fmt == "table":
                print()
            print(render(data, title=title, fmt=fmt))
            if fmt == "table":
                print("(computed in %.1fs)" % elapsed)
    if fmt == "json":
        print(json.dumps(collected, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
