"""Rendering for benchmark output and EXPERIMENTS.md.

:func:`format_table` is the aligned-markdown form used in terminals and
documents; :func:`format_output` renders the same rows as a table, CSV
or JSON for machine consumers (``python -m repro bench --format csv``).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Sequence

FORMATS = ("table", "csv", "json")


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (markdown-compatible)."""
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))
            else:
                widths.append(len(value))

    def line(values: Sequence[str]) -> str:
        cells = [
            value.ljust(widths[index]) for index, value in enumerate(values)
        ]
        return "| " + " | ".join(cells) + " |"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in materialized:
        parts.append(line(row))
    return "\n".join(parts)


def format_output(
    rows: Iterable[Sequence[object]],
    columns: Sequence[str],
    fmt: str = "table",
    title: str = "",
) -> str:
    """Render ``rows`` in the requested format (table, csv, or json).

    ``rows`` are sequences ordered like ``columns``.  The table form is
    :func:`format_table`; CSV carries a header row; JSON is an object
    with the title and a list of ``{column: value}`` records (floats
    and ints pass through unformatted so downstream tooling keeps full
    precision).
    """
    materialized = [list(row) for row in rows]
    if fmt == "table":
        return format_table(columns, materialized, title=title)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(list(columns))
        for row in materialized:
            writer.writerow(row)
        return buffer.getvalue().rstrip("\n")
    if fmt == "json":
        records = [
            {column: value for column, value in zip(columns, row)}
            for row in materialized
        ]
        return json.dumps(
            {"title": title, "rows": records}, indent=2, default=str
        )
    raise ValueError(
        "unknown format %r (expected one of %s)" % (fmt, list(FORMATS))
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.3f" % value
    return str(value)


def human_bytes(count: int) -> str:
    """1234567 -> '1.2 MB' (decimal units, as in the paper)."""
    if count >= 1_000_000:
        return "%.1f MB" % (count / 1_000_000)
    if count >= 1_000:
        return "%.1f KB" % (count / 1_000)
    return "%d B" % count
