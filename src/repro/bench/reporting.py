"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (markdown-compatible)."""
    materialized: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))
            else:
                widths.append(len(value))

    def line(values: Sequence[str]) -> str:
        cells = [
            value.ljust(widths[index]) for index, value in enumerate(values)
        ]
        return "| " + " | ".join(cells) + " |"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in materialized:
        parts.append(line(row))
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.3f" % value
    return str(value)


def human_bytes(count: int) -> str:
    """1234567 -> '1.2 MB' (decimal units, as in the paper)."""
    if count >= 1_000_000:
        return "%.1f MB" % (count / 1_000_000)
    if count >= 1_000:
        return "%.1f KB" % (count / 1_000)
    return "%d B" % count
