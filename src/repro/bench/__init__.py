"""Benchmark harness: one experiment function per paper table/figure.

:mod:`repro.bench.workloads` builds the benchmark-scale documents and
policies once; :mod:`repro.bench.experiments` computes the rows/series
of every table and figure (Table 1, Table 2, Fig. 8-12);
:mod:`repro.bench.reporting` renders them as aligned text tables with
the paper's reference numbers alongside.

The ``benchmarks/`` directory contains one pytest-benchmark target per
experiment; each prints its table and times a representative kernel.
Run everything with::

    pytest benchmarks/ --benchmark-only

or regenerate the EXPERIMENTS.md data with::

    python -m repro.bench
"""

from repro.bench.experiments import (
    fig8_index_overhead,
    fig9_access_control,
    fig10_queries,
    fig11_integrity,
    fig12_real_datasets,
    table1_costs,
    table2_documents,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import Workloads

__all__ = [
    "Workloads",
    "table1_costs",
    "table2_documents",
    "fig8_index_overhead",
    "fig9_access_control",
    "fig10_queries",
    "fig11_integrity",
    "fig12_real_datasets",
    "format_table",
]
