"""The Hospital document and its access-control policies (Fig. 1).

Schema (one ``Folder`` per patient)::

    Hospital
      Folder*
        Admin    (SSN, Fname, Lname, Age)
        Protocol*(Id, Type, Date, RPhys)        # subscribed test protocols
        MedActs
          Act*   (Date, VitalSigns, Symptoms, Diagnostic,
                  Details(Comments), RPhys)
        Analysis
          LabResults* (G1..G10 group element holding Cholesterol and
                       other measures, RPhys)

Profiles (verbatim from the paper):

* **Secretary** — ``S1: +//Admin``;
* **Doctor** — ``D1: +//Folder/Admin``,
  ``D2: +//MedActs[//RPhys = USER]``,
  ``D3: -//Act[RPhys != USER]/Details``,
  ``D4: +//Folder[MedActs//RPhys = USER]/Analysis``;
* **Researcher** — ``R1: +//Folder[Protocol]//Age`` and, for each
  monitored protocol group ``Gk``:
  ``R2k: +//Folder[Protocol/Type = Gk]//LabResults//Gk`` and
  ``R3k: -//Gk[Cholesterol > 250]``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.accesscontrol.model import AccessRule, Policy
from repro.xmlkit.dom import Node

GROUPS = tuple("G%d" % i for i in range(1, 11))

_FIRST_NAMES = (
    "Anna", "Luc", "Marie", "Paul", "Nina", "Hugo", "Lea", "Marc",
    "Eva", "Jean", "Zoe", "Remy", "Ida", "Noel", "Lou", "Max",
)
_LAST_NAMES = (
    "Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard",
    "Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent",
)
_SYMPTOMS = (
    "fever and fatigue", "persistent cough", "chest pain", "headache",
    "joint pain", "shortness of breath", "dizziness", "nausea",
)
_DIAGNOSTICS = (
    "seasonal influenza", "hypertension stage 1", "type 2 diabetes",
    "bronchitis", "migraine", "arrhythmia", "anemia", "gastritis",
)
_COMMENTS = (
    "prescribed rest and fluids, follow-up in two weeks",
    "adjusted treatment dosage after blood panel review",
    "referred to specialist for complementary examination",
    "patient responds well to the current treatment",
    "monitoring required after abnormal reading during consultation",
    "discussed lifestyle changes and scheduled a control visit",
)

_OBSERVATIONS = (
    "general state is stable, no acute distress observed during the visit",
    "patient reports gradual improvement since the previous consultation",
    "mild tenderness persists, imaging results pending from the laboratory",
    "no adverse reaction to the medication reported over the period",
    "condition consistent with the working diagnosis, treatment unchanged",
)
_MEASURES = ("HDL", "LDL", "Triglycerides", "Glucose")


class HospitalConfig:
    """Generation knobs (deterministic given ``seed``)."""

    def __init__(
        self,
        folders: int = 50,
        doctors: int = 8,
        acts_per_folder: int = 6,
        labresults_per_folder: int = 4,
        protocol_probability: float = 0.5,
        seed: int = 42,
    ):
        self.folders = folders
        self.doctors = doctors
        self.acts_per_folder = acts_per_folder
        self.labresults_per_folder = labresults_per_folder
        self.protocol_probability = protocol_probability
        self.seed = seed

    def doctor_names(self) -> List[str]:
        return ["doctor%d" % i for i in range(self.doctors)]


def generate_hospital(config: Optional[HospitalConfig] = None) -> Node:
    """Generate the Hospital document (ToXgene substitute)."""
    config = config or HospitalConfig()
    rng = random.Random(config.seed)
    doctors = config.doctor_names()
    root = Node("Hospital")
    for folder_index in range(config.folders):
        folder = root.element("Folder")
        admin = folder.element("Admin")
        admin.element("SSN", "%09d" % rng.randrange(10 ** 9))
        admin.element("Fname", rng.choice(_FIRST_NAMES))
        admin.element("Lname", rng.choice(_LAST_NAMES))
        admin.element("Age", str(rng.randint(1, 99)))
        admin.element(
            "Address",
            "%d rue %s, %05d %s cedex"
            % (
                rng.randint(1, 180),
                rng.choice(_LAST_NAMES),
                rng.randrange(100000),
                rng.choice(("Paris", "Lyon", "Lille", "Nantes", "Rennes")),
            ),
        )
        admin.element(
            "Insurance",
            "plan %s-%04d coverage %d%%"
            % (rng.choice("ABC"), rng.randrange(10000), rng.choice((70, 80, 100))),
        )
        protocol_types: List[str] = []
        if rng.random() < config.protocol_probability:
            for _ in range(rng.randint(1, 2)):
                protocol = folder.element("Protocol")
                protocol.element("Id", "P%05d" % rng.randrange(100000))
                group_type = rng.choice(GROUPS)
                protocol_types.append(group_type)
                protocol.element("Type", group_type)
                protocol.element("Date", _date(rng))
                protocol.element("RPhys", rng.choice(doctors))
        medacts = folder.element("MedActs")
        for _ in range(rng.randint(1, config.acts_per_folder)):
            act = medacts.element("Act")
            act.element("Date", _date(rng))
            # RPhys early in the act record: the physician predicates of
            # rules D2/D3 resolve before Details arrives, so foreign
            # details are skipped rather than buffered (matching the
            # paper's observation that only the Researcher profile pays
            # a visible pending-predicate overhead).
            act.element("RPhys", rng.choice(doctors))
            act.element(
                "VitalSigns",
                "bp %d/%d pulse %d"
                % (rng.randint(95, 160), rng.randint(55, 100), rng.randint(50, 110)),
            )
            act.element(
                "Symptoms",
                "%s; %s" % (rng.choice(_SYMPTOMS), rng.choice(_SYMPTOMS)),
            )
            act.element(
                "Diagnostic",
                "%s — %s" % (rng.choice(_DIAGNOSTICS), rng.choice(_OBSERVATIONS)),
            )
            details = act.element("Details")
            details.element(
                "Comments",
                "%s. %s. %s. %s."
                % (
                    rng.choice(_COMMENTS),
                    rng.choice(_OBSERVATIONS),
                    rng.choice(_COMMENTS),
                    rng.choice(_OBSERVATIONS),
                ),
            )
            details.element(
                "Observations",
                "%s. %s. %s."
                % (
                    rng.choice(_OBSERVATIONS),
                    rng.choice(_OBSERVATIONS),
                    rng.choice(_COMMENTS),
                ),
            )
        analysis = folder.element("Analysis")
        for _ in range(rng.randint(1, config.labresults_per_folder)):
            labresults = analysis.element("LabResults")
            # Patients subscribed to protocol Gk predominantly get Gk
            # lab panels (mirrors the paper's motivating scenario where
            # the researcher's per-group rules select real data).
            if protocol_types and rng.random() < 0.7:
                group_name = rng.choice(protocol_types)
            else:
                group_name = rng.choice(GROUPS)
            group = labresults.element(group_name)
            group.element("Cholesterol", str(rng.randint(120, 350)))
            for measure in rng.sample(_MEASURES, rng.randint(2, 4)):
                group.element(measure, str(rng.randint(40, 260)))
            group.element(
                "Notes",
                "%s panel drawn on %s; %s"
                % (group_name, _date(rng), rng.choice(_OBSERVATIONS)),
            )
            labresults.element("RPhys", rng.choice(doctors))
    return root


def _date(rng: random.Random) -> str:
    return "%04d-%02d-%02d" % (
        rng.randint(1998, 2004),
        rng.randint(1, 12),
        rng.randint(1, 28),
    )


# ----------------------------------------------------------------------
# Access-control policies of Fig. 1
# ----------------------------------------------------------------------
def secretary_policy() -> Policy:
    """S1: access to the administrative subfolders only."""
    return Policy([AccessRule("+", "//Admin", "S1")], subject="secretary")


def doctor_policy(user: str) -> Policy:
    """D1-D4: administrative data, own medical acts (details of other
    physicians' acts excluded) and analysis of own patients."""
    rules = [
        AccessRule("+", "//Folder/Admin", "D1"),
        AccessRule("+", "//MedActs[//RPhys = USER]", "D2"),
        AccessRule("-", "//Act[RPhys != USER]/Details", "D3"),
        AccessRule("+", "//Folder[MedActs//RPhys = USER]/Analysis", "D4"),
    ]
    return Policy(rules, subject=user)


def researcher_policy(groups: Sequence[str] = GROUPS) -> Policy:
    """R1 + (R2, R3) per monitored protocol group.

    The paper's experiment grants the researcher 10 protocols, "each
    expressed by one positive and one negative rule".
    """
    rules = [AccessRule("+", "//Folder[Protocol]//Age", "R1")]
    for group in groups:
        rules.append(
            AccessRule(
                "+",
                "//Folder[Protocol/Type = %s]//LabResults//%s" % (group, group),
                "R2-%s" % group,
            )
        )
        rules.append(
            AccessRule("-", "//%s[Cholesterol > 250]" % group, "R3-%s" % group)
        )
    return Policy(rules, subject="researcher")
