"""Synthetic equivalents of the paper's real datasets (Table 2).

The paper uses three documents from the UW XML repository:

========  ======  =========  =========  ==========  =========
Dataset   Size    Text size  Max depth  Avg. depth  # tags
========  ======  =========  =========  ==========  =========
WSU       1.3 MB  210 KB     4          3.1         20
Sigmod    350 KB  146 KB     6          5.1         11
Treebank  59 MB   33 MB      36         7.8         250
========  ======  =========  =========  ==========  =========

These files are not redistributable in this offline environment, so we
generate documents with the same *shape*: WSU is flat with a huge
number of tiny elements (structure dominates), Sigmod is a well-
structured medium-depth bibliography, Treebank is deeply recursive
with a large tag alphabet and long text leaves.  A ``scale`` parameter
trades fidelity of absolute size for runtime; all shape statistics are
preserved at any scale (Table 2 is regenerated from the actual
generated documents by the Table 2 bench).
"""

from __future__ import annotations

import random
from typing import List

from repro.xmlkit.dom import Node

# ----------------------------------------------------------------------
# WSU: university course records — flat, tiny elements
# ----------------------------------------------------------------------
_WSU_FIELDS = (
    "crs", "sect", "title", "instructor", "credit", "days", "times",
    "place", "enrolled", "limit", "footnote", "bldg", "room", "start",
    "end", "cap", "sln",
)
_WSU_WORDS = ("CS", "MATH", "BIO", "PHY", "ENG", "HIST", "ECON", "STAT")


def generate_wsu(scale: float = 1.0, seed: int = 7) -> Node:
    """WSU-like: depth 4, ~20 distinct tags, many very small elements.

    Structure represents most of the document (the paper reports the
    structure at 78% of the document size after TCSBR indexing).
    """
    rng = random.Random(seed)
    courses = max(1, int(400 * scale))
    root = Node("root")
    for index in range(courses):
        course = root.element("course")
        course.element("sln", "%05d" % rng.randrange(100000))
        for field in _WSU_FIELDS:
            if rng.random() < 0.75:
                leaf = course.element(field)
                kind = rng.random()
                if kind < 0.5:
                    leaf.children.append(str(rng.randint(1, 999)))
                elif kind < 0.8:
                    leaf.children.append(
                        "%s %d" % (rng.choice(_WSU_WORDS), rng.randint(100, 599))
                    )
                else:
                    leaf.children.append(rng.choice(_WSU_WORDS))
    return root


# ----------------------------------------------------------------------
# Sigmod Record: bibliography — regular, medium depth
# ----------------------------------------------------------------------
_TITLE_WORDS = (
    "query", "optimization", "database", "transaction", "index", "join",
    "storage", "distributed", "stream", "xml", "semantic", "concurrency",
    "recovery", "parallel", "cache", "benchmark",
)
_AUTHOR_NAMES = (
    "A. Smith", "B. Chen", "C. Garcia", "D. Kumar", "E. Brown",
    "F. Dubois", "G. Rossi", "H. Tanaka", "I. Novak", "J. Silva",
)


def generate_sigmod(scale: float = 1.0, seed: int = 11) -> Node:
    """Sigmod-Record-like: 11 tags, depth 6, well-structured."""
    rng = random.Random(seed)
    issues = max(1, int(20 * scale))
    root = Node("SigmodRecord")
    for _ in range(issues):
        issue = root.element("issue")
        issue.element("volume", str(rng.randint(11, 34)))
        issue.element("number", str(rng.randint(1, 4)))
        articles = issue.element("articles")
        for _ in range(rng.randint(5, 12)):
            article = articles.element("article")
            article.element(
                "title",
                " ".join(rng.sample(_TITLE_WORDS, rng.randint(4, 8))).title(),
            )
            init_page = rng.randint(1, 120)
            article.element("initPage", str(init_page))
            article.element("endPage", str(init_page + rng.randint(2, 18)))
            authors = article.element("authors")
            for position in range(rng.randint(1, 4)):
                author = authors.element("author")
                author.children.append(rng.choice(_AUTHOR_NAMES))
    return root


# ----------------------------------------------------------------------
# Treebank: tagged English sentences — deep, recursive, 250 tags
# ----------------------------------------------------------------------
_SYNTAX_TAGS = [
    "S", "NP", "VP", "PP", "ADJP", "ADVP", "SBAR", "WHNP", "WHPP",
    "PRN", "FRAG", "NX", "QP", "UCP", "INTJ", "CONJP", "LST", "X",
    "NNP", "NN", "VB", "VBD", "VBZ", "JJ", "RB", "DT", "IN", "CC",
    "PRP", "MD", "CD", "TO", "WDT", "EX", "POS", "RP", "FW", "UH",
]
_TREEBANK_WORDS = (
    "the market fell sharply after the announcement and investors "
    "retreated to safer assets while analysts debated the outlook for "
    "growth in the coming quarter amid renewed uncertainty about rates"
).split()


def _treebank_tags(count: int) -> List[str]:
    tags = list(_SYNTAX_TAGS)
    index = 1
    while len(tags) < count:
        tags.append("T%03d" % index)
        index += 1
    return tags[:count]


def generate_treebank(
    scale: float = 1.0, seed: int = 13, distinct_tags: int = 250
) -> Node:
    """Treebank-like: deeply recursive (max depth ~36), huge tag
    alphabet, text-heavy leaves."""
    rng = random.Random(seed)
    tags = _treebank_tags(distinct_tags)
    sentences = max(1, int(300 * scale))
    root = Node("FILE")
    used_tags = set()

    def grow(node: Node, depth: int, budget: List[int]) -> None:
        fanout = rng.randint(1, 3)
        for _ in range(fanout):
            if budget[0] <= 0:
                return
            budget[0] -= 1
            # Bias towards frequent syntactic tags but make sure the
            # whole alphabet appears (Table 2: 250 distinct tags).
            if rng.random() < 0.9:
                tag = tags[rng.randrange(min(40, len(tags)))]
            else:
                tag = tags[rng.randrange(len(tags))]
            used_tags.add(tag)
            child = node.element(tag)
            deeper = depth < 36 and rng.random() < 0.62
            if deeper:
                grow(child, depth + 1, budget)
            if not deeper or not any(True for _ in child.element_children()):
                words = rng.randint(1, 4)
                start = rng.randrange(len(_TREEBANK_WORDS))
                child.children.append(
                    " ".join(
                        _TREEBANK_WORDS[(start + i) % len(_TREEBANK_WORDS)]
                        for i in range(words)
                    )
                )

    for _ in range(sentences):
        sentence = root.element("EMPTY")
        grow(sentence, 2, [rng.randint(10, 60)])
    # Guarantee full alphabet coverage with one synthetic sentence.
    coda = root.element("EMPTY")
    holder = coda
    for depth, tag in enumerate(tag for tag in tags if tag not in used_tags):
        holder = holder.element(tag)
        if depth % 8 == 7:
            holder.children.append("filler")
            holder = coda
    return root
