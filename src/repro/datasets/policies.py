"""Random access-control policies (the Fig. 12 experiment).

"For these documents we generated random access rules (including //
and predicates)" — Section 7.  We sample rules from the *actual
structure* of the document so that they have non-trivial scopes:
a random node's root path is generalized (some steps replaced by ``//``
or ``*``), optionally extended with a predicate on a sibling/child leaf
value, and signed.
"""

from __future__ import annotations

import random
from typing import List

from repro.accesscontrol.model import AccessRule, Policy
from repro.xmlkit.dom import Node


def _sample_paths(tree: Node, rng: random.Random, count: int) -> List[List[Node]]:
    """Sample ``count`` random root-to-node paths."""
    all_paths: List[List[Node]] = []

    def collect(node: Node, path: List[Node]) -> None:
        current = path + [node]
        all_paths.append(current)
        for child in node.element_children():
            collect(child, current)

    collect(tree, [])
    if len(all_paths) <= count:
        return all_paths
    return rng.sample(all_paths, count)


def _generalize(path: List[Node], rng: random.Random) -> str:
    """Turn a concrete node path into a random XP{[],*,//} expression."""
    # Keep a random suffix of the path, anchored with //.
    if len(path) > 2 and rng.random() < 0.7:
        start = rng.randrange(1, len(path))
        steps = path[start:]
        prefix = "//"
    else:
        steps = path
        prefix = "/"
    parts: List[str] = []
    for index, node in enumerate(steps):
        axis = prefix if index == 0 else ("//" if rng.random() < 0.2 else "/")
        test = "*" if rng.random() < 0.1 and index < len(steps) - 1 else node.tag
        parts.append(axis + test)
    return "".join(parts)


def _maybe_predicate(
    path: List[Node], expression: str, rng: random.Random
) -> str:
    """Attach a predicate on a leaf child of the selected node."""
    node = path[-1]
    leaves = [
        child
        for child in node.element_children()
        if child.text() and not any(True for _ in child.element_children())
    ]
    if not leaves or rng.random() < 0.5:
        return expression
    leaf = rng.choice(leaves)
    value = leaf.text().strip()
    try:
        number = float(value)
        operator = rng.choice(["=", "!=", ">", "<", ">=", "<="])
        literal = (
            str(int(number)) if number.is_integer() else str(number)
        )
    except ValueError:
        operator = rng.choice(["=", "!="])
        literal = '"%s"' % value.replace('"', "")
    return "%s[%s %s %s]" % (expression, leaf.tag, operator, literal)


def random_policy_for(
    tree: Node,
    rules: int = 8,
    seed: int = 0,
    positive_ratio: float = 0.65,
    subject: str = "user",
) -> Policy:
    """A random policy whose rules reference real paths of ``tree``."""
    rng = random.Random(seed)
    sampled = _sample_paths(tree, rng, rules * 3)
    chosen: List[AccessRule] = []
    attempts = 0
    while len(chosen) < rules and attempts < rules * 20:
        attempts += 1
        path = rng.choice(sampled)
        expression = _generalize(path, rng)
        expression = _maybe_predicate(path, expression, rng)
        sign = "+" if rng.random() < positive_ratio else "-"
        try:
            rule = AccessRule(sign, expression, "RND%d" % len(chosen))
        except ValueError:
            continue
        chosen.append(rule)
    if not any(rule.is_positive for rule in chosen) and chosen:
        # A policy with no positive rule denies everything; flip one so
        # the experiment exercises real traffic.
        first = chosen[0]
        chosen[0] = AccessRule("+", first.object, first.name)
    return Policy(chosen, subject=subject)
