"""Dataset generators.

The paper evaluates on one synthetic document (Hospital, generated with
ToXgene following the schema of Fig. 1) and three real documents from
the UW XML repository (WSU, Sigmod Record, Treebank).  The real
datasets are not redistributable here, so we generate *synthetic
equivalents* matching the characteristics the paper reports in Table 2
(size, text share, depth distribution, number of distinct tags,
recursion) — the quantities that drive every measured effect (index
ratios in Fig. 8, throughput in Fig. 12).

* :mod:`repro.datasets.hospital` — the Hospital document + the
  Secretary/Doctor/Researcher access-control policies of Fig. 1;
* :mod:`repro.datasets.real` — WSU / Sigmod / Treebank substitutes;
* :mod:`repro.datasets.policies` — random access-control policies for
  the Fig. 12 experiment.
"""

from repro.datasets.hospital import (
    HospitalConfig,
    doctor_policy,
    generate_hospital,
    researcher_policy,
    secretary_policy,
)
from repro.datasets.real import generate_sigmod, generate_treebank, generate_wsu
from repro.datasets.policies import random_policy_for

__all__ = [
    "HospitalConfig",
    "generate_hospital",
    "secretary_policy",
    "doctor_policy",
    "researcher_policy",
    "generate_wsu",
    "generate_sigmod",
    "generate_treebank",
    "random_policy_for",
]
