"""Rendering for ``repro stats`` and the ``repro top`` dashboard.

Both commands poll the same STATS wire frame a station or gateway
already serves; everything here is pure formatting over that body so it
can be unit-tested without sockets.  ``repro top`` keeps the previous
poll to turn monotonically increasing request counters into rates.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["flatten_stats", "render_stats", "render_top"]


def flatten_stats(body: Dict[str, Any], prefix: str = "") -> List[Tuple[str, Any]]:
    """Depth-first ``("a.b.c", value)`` pairs for csv/table output."""
    rows: List[Tuple[str, Any]] = []
    for key in sorted(body):
        value = body[key]
        path = "%s.%s" % (prefix, key) if prefix else str(key)
        if isinstance(value, dict):
            rows.extend(flatten_stats(value, path))
        elif isinstance(value, (list, tuple)):
            rows.append((path, json.dumps(value)))
        else:
            rows.append((path, value))
    return rows


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def render_stats(body: Dict[str, Any], fmt: str = "table") -> str:
    """Render a STATS body as ``table``, ``csv`` or ``json``."""
    if fmt == "json":
        return json.dumps(body, indent=2, sort_keys=True)
    if fmt == "csv":
        lines = ["key,value"]
        for key, value in flatten_stats(body):
            text = str(value)
            if "," in text or '"' in text:
                text = '"%s"' % text.replace('"', '""')
            lines.append("%s,%s" % (key, text))
        return "\n".join(lines)
    if fmt != "table":
        raise ValueError("unknown stats format %r" % (fmt,))
    # Table: the per_backend map renders as a real table, the rest as
    # flattened key/value rows.  Bulky nested payloads (the slow-query
    # log's span trees) would blow the value column out to hundreds of
    # columns; they stay reachable via --format json.
    sections: List[str] = []
    per_backend = body.get("per_backend")
    if isinstance(per_backend, dict) and per_backend:
        sections.append(_backend_table(body))
    scalar_body = {k: v for k, v in body.items() if k != "per_backend"}
    rows = [
        (key, value if len(str(value)) <= 60 else str(value)[:57] + "...")
        for key, value in flatten_stats(scalar_body)
    ]
    sections.append(_table(("key", "value"), rows))
    return "\n\n".join(sections)


def _cache_rate(station: Optional[Dict[str, Any]]) -> str:
    if not station:
        return "-"
    hits = int(station.get("view_hits") or 0)
    misses = int(station.get("view_misses") or 0)
    total = hits + misses
    if total == 0:
        return "-"
    return "%d%%" % round(100.0 * hits / total)


def _latency_cell(latency: Optional[Dict[str, Any]], key: str) -> str:
    if not latency:
        return "-"
    value = latency.get(key)
    return "-" if value is None else "%.1f" % float(value)


def _human_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "K", "M", "G", "T"):
        if value < 1024.0 or unit == "T":
            if unit == "B":
                return "%d%s" % (int(value), unit)
            return "%.1f%s" % (value, unit)
        value /= 1024.0
    return "%dB" % count


def _store_cell(store: Optional[Dict[str, Any]]) -> str:
    """Condense a store ``describe()`` payload into one table cell."""
    if not store:
        return "-"
    if not store.get("persistent"):
        return "mem"
    hits = int(store.get("page_hits") or 0)
    misses = int(store.get("page_misses") or 0)
    total = hits + misses
    rate = "-" if total == 0 else "%d%%" % round(100.0 * hits / total)
    return "log %s %s" % (_human_bytes(int(store.get("log_bytes") or 0)), rate)


def _backend_rows(
    body: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    interval: Optional[float] = None,
) -> List[List[str]]:
    prev_backends = (prev or {}).get("per_backend") or {}
    rows: List[List[str]] = []
    for name in sorted(body.get("per_backend") or {}):
        entry = body["per_backend"][name]
        latency = entry.get("latency_ms") or {}
        backend_info = entry.get("backend") or {}
        requests = int(entry.get("requests") or 0)
        if interval and name in prev_backends:
            delta = requests - int(prev_backends[name].get("requests") or 0)
            rps = "%.1f" % (max(0, delta) / interval)
        else:
            rps = "-"
        native = backend_info.get("native_kernels")
        rows.append(
            [
                name,
                "up" if entry.get("alive") else "DOWN",
                str(requests),
                rps,
                _latency_cell(latency, "p50"),
                _latency_cell(latency, "p95"),
                _latency_cell(latency, "p99"),
                _cache_rate(entry.get("station")),
                str(backend_info.get("fallbacks", "-")),
                "-" if native is None else ("yes" if native else "no"),
                _store_cell(entry.get("store")),
            ]
        )
    return rows


_BACKEND_HEADERS = (
    "backend",
    "state",
    "requests",
    "rps",
    "p50ms",
    "p95ms",
    "p99ms",
    "cache%",
    "fallbacks",
    "native",
    "store",
)


def _backend_table(
    body: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    interval: Optional[float] = None,
) -> str:
    return _table(_BACKEND_HEADERS, _backend_rows(body, prev, interval))


def render_top(
    body: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    interval: Optional[float] = None,
    address: str = "",
) -> str:
    """One ``repro top`` frame for a gateway or single-station STATS body."""
    lines: List[str] = []
    obs = body.get("observability") or {}
    if body.get("role") == "gateway":
        ring = body.get("ring") or {}
        gateway = body.get("gateway") or {}
        lines.append(
            "repro top — gateway %s · backends %s/%s alive · replicas %s"
            % (
                address or "?",
                ring.get("alive", "?"),
                ring.get("total", "?"),
                body.get("replicas", "?"),
            )
        )
        latency = body.get("latency_ms") or {}
        lines.append(
            "cluster: queries=%d updates=%d failovers=%d repairs=%d "
            "p50=%s p95=%s p99=%s slow=%d"
            % (
                int(gateway.get("queries") or 0),
                int(gateway.get("updates") or 0),
                int(gateway.get("failovers") or 0),
                int(gateway.get("repairs") or 0),
                _latency_cell(latency, "p50"),
                _latency_cell(latency, "p95"),
                _latency_cell(latency, "p99"),
                int(obs.get("slow_queries") or 0),
            )
        )
        lines.append("")
        lines.append(_backend_table(body, prev, interval))
    else:
        station = body.get("station") or {}
        server = body.get("server") or {}
        backend_info = body.get("backend") or {}
        requests = int(server.get("queries") or 0)
        if interval and prev is not None:
            prev_requests = int((prev.get("server") or {}).get("queries") or 0)
            rps = "%.1f" % (max(0, requests - prev_requests) / interval)
        else:
            rps = "-"
        native = backend_info.get("native_kernels")
        lines.append("repro top — station %s" % (address or "?"))
        lines.append("")
        lines.append(
            _table(
                (
                    "queries",
                    "rps",
                    "updates",
                    "cache%",
                    "views",
                    "fallbacks",
                    "native",
                    "store",
                    "slow",
                ),
                [
                    [
                        str(requests),
                        rps,
                        str(int(server.get("updates") or 0)),
                        _cache_rate(station),
                        str(body.get("cached_views", "-")),
                        str(backend_info.get("fallbacks", "-")),
                        "-" if native is None else ("yes" if native else "no"),
                        _store_cell(body.get("store")),
                        str(int(obs.get("slow_queries") or 0)),
                    ]
                ],
            )
        )
    return "\n".join(lines)
