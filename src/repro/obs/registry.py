"""Metrics registry: counters, gauges and fixed-bucket histograms.

Design constraints, in order:

1. **Lock-cheap.**  Every instrument owns one tiny ``threading.Lock``
   held only for the few bytecodes of a read-modify-write; nothing is
   locked on the scrape path beyond a snapshot of the family table.
   (Plain ``+=`` on an attribute is *not* atomic across threads in
   CPython — the concurrent-increment test in ``tests/test_obs.py``
   fails without the lock.)

2. **Mergeable**, like ``Meter.merged()``.  Histograms with identical
   bucket bounds merge by summing bucket counts, so a gateway can pool
   per-backend latency histograms into one statistically correct
   aggregate instead of averaging per-backend percentile values
   (averaging percentiles is wrong under skewed backends).

3. **Fixed buckets.**  Bucket upper bounds are chosen at registration
   time and never move, which keeps ``observe()`` at one ``bisect``
   plus two adds and makes merge associative by construction.

The registry renders in the Prometheus text exposition format (served
by ``repro.obs.http``) and snapshots to plain dicts for the STATS wire
frame and ``repro stats``.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
]

# Latency buckets in *milliseconds* — the unit every report in this repo
# already uses (loadgen, gateway STATS, bench tables).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)

# Byte-size buckets for payload/chunk histograms.
BYTE_BUCKETS: Tuple[float, ...] = (
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _fmt_value(value: float) -> str:
    """Prometheus sample value: integral floats render without decimals."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up, got %r" % (amount,))
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)


class Gauge:
    """Value that can go up and down (or be set outright)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Gauge") -> None:
        # Gauges merge by sum: every use in this repo is a total
        # (cached views, live connections) where summing across
        # processes is the meaningful aggregate.
        with self._lock:
            self._value += other._value


class Histogram:
    """Fixed-bucket histogram with inclusive (``le``) upper bounds.

    ``observe(v)`` lands ``v`` in the first bucket whose bound is
    ``>= v``; values above the last bound land in the implicit ``+Inf``
    bucket.  Merging requires identical bounds and is associative and
    commutative (it just sums counts), so ``Histogram.merged()`` over
    per-backend histograms equals one histogram fed every raw sample.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_lock")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_MS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                "bucket bounds must be strictly increasing: %r" % (bounds,)
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts, last entry being the ``+Inf`` bucket."""
        return tuple(self._counts)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimated by linear interpolation
        inside the owning bucket (the ``+Inf`` bucket reports the last
        finite bound — the histogram cannot see beyond it)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile q must be in [0, 100], got %r" % (q,))
        with self._lock:
            counts = list(self._counts)
            total = sum(counts)
        if total == 0:
            return 0.0
        rank = max(1, math.ceil((q / 100.0) * total))
        cumulative = 0
        for idx, count in enumerate(counts):
            if count == 0:
                continue
            before = cumulative
            cumulative += count
            if cumulative >= rank:
                if idx >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = self.bounds[idx]
                return lower + (upper - lower) * ((rank - before) / count)
        return self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bounds: %r vs %r"
                % (self.bounds, other.bounds)
            )
        with other._lock:
            counts = list(other._counts)
            total = other._sum
        with self._lock:
            for idx, count in enumerate(counts):
                self._counts[idx] += count
            self._sum += total

    @classmethod
    def merged(cls, histograms: Iterable["Histogram"]) -> "Histogram":
        items = list(histograms)
        if not items:
            return cls()
        out = cls(items[0].bounds)
        for item in items:
            out.merge(item)
        return out

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        out = cls(data["buckets"])
        counts = [int(c) for c in data["counts"]]
        if len(counts) != len(out._counts):
            raise ValueError("histogram counts/buckets length mismatch")
        out._counts = counts
        out._sum = float(data.get("sum", 0.0))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family; children are keyed by label values."""

    __slots__ = ("name", "kind", "help", "labelnames", "_children", "_lock", "_factory")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        factory: Callable[[], Any],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._lock = threading.Lock()
        self._factory = factory

    def labels(self, **labels: str) -> Any:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                "metric %r takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(labels))
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._factory())
        return child

    def _default_child(self) -> Any:
        if self.labelnames:
            raise ValueError(
                "metric %r declares labels %r: use .labels(...)"
                % (self.name, self.labelnames)
            )
        return self.labels()

    # Convenience delegation for unlabelled families.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    def collect(self) -> List[Tuple[Tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Named families of instruments + Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- registration --------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        factory: Callable[[], Any],
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % (name,))
        names = tuple(labelnames)
        for label in names:
            if not _LABEL_RE.match(label):
                raise ValueError("invalid label name %r" % (label,))
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != names:
                    raise ValueError(
                        "metric %r already registered as %s%r"
                        % (name, family.kind, family.labelnames)
                    )
                return family
            family = _Family(name, kind, help_text, names, factory)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, "counter", help_text, labelnames, Counter)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        return self._family(name, "gauge", help_text, labelnames, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_MS,
        labelnames: Sequence[str] = (),
    ) -> _Family:
        bounds = tuple(float(b) for b in buckets)
        return self._family(
            name, "histogram", help_text, labelnames, lambda: Histogram(bounds)
        )

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a pull-time hook, called once per ``render()`` /
        ``snapshot()``.  Collectors let existing ad-hoc counter dicts
        (``StationStats``, ``server_stats``, ``gateway_stats``) surface
        as gauges with zero cost on the hot path: they are only read
        when someone scrapes."""
        with self._lock:
            self._collectors.append(collector)

    # -- exposition ----------------------------------------------------
    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        self._run_collectors()
        with self._lock:
            families = list(self._families.values())
        lines: List[str] = []
        for family in families:
            children = family.collect()
            if not children:
                continue
            if family.help:
                lines.append("# HELP %s %s" % (family.name, family.help))
            lines.append("# TYPE %s %s" % (family.name, family.kind))
            for key, child in children:
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    lines.extend(self._render_histogram(family.name, labels, child))
                else:
                    lines.append(
                        "%s %s"
                        % (_sample_name(family.name, labels), _fmt_value(child.value))
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_histogram(
        name: str, labels: Dict[str, str], histogram: Histogram
    ) -> List[str]:
        lines: List[str] = []
        cumulative = 0
        counts = histogram.bucket_counts
        for bound, count in zip(histogram.bounds, counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _fmt_value(bound)
            lines.append(
                "%s %d" % (_sample_name(name + "_bucket", bucket_labels), cumulative)
            )
        cumulative += counts[-1]
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            "%s %d" % (_sample_name(name + "_bucket", inf_labels), cumulative)
        )
        lines.append(
            "%s %s" % (_sample_name(name + "_sum", labels), _fmt_value(histogram.sum))
        )
        lines.append("%s %d" % (_sample_name(name + "_count", labels), cumulative))
        return lines

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able view of every family (for STATS / ``repro stats``)."""
        self._run_collectors()
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, Any] = {}
        for family in families:
            entries = []
            for key, child in family.collect():
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    entry: Dict[str, Any] = {"labels": labels}
                    entry.update(child.as_dict())
                    entry["count"] = child.count
                else:
                    entry = {"labels": labels, "value": child.value}
                entries.append(entry)
            out[family.name] = {"type": family.kind, "samples": entries}
        return out

    def family(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)


def _sample_name(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    rendered = ",".join(
        '%s="%s"' % (key, _escape_label(value))
        for key, value in sorted(labels.items())
    )
    return "%s{%s}" % (name, rendered)
