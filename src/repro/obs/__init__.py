"""Shared observability layer: metrics registry, request tracing, exposition.

The paper's argument is a *linear cost model* (Table 1 / §7): every
request's price is a sum of bytes transferred, bytes decrypted, bytes
hashed and automaton token operations.  ``repro.metrics.Meter`` already
accounts those costs per request; this package makes them — and the
wall-clock reality around them — observable while the system runs:

``repro.obs.registry``
    A process-wide metrics registry: counters, gauges and fixed-bucket
    histograms.  Lock-cheap (one small lock per instrument, none on the
    read path until scrape), mergeable like ``Meter.merged()``, and
    renderable in the Prometheus text exposition format.

``repro.obs.trace``
    Request tracing: 64-bit trace ids minted at the client or gateway
    and carried in the wire frame header (protocol version 2), per-stage
    spans (gateway routing, backend queueing, pipeline stages, compute
    dispatch) retained in a bounded ring buffer, and a slow-query log
    that captures the full span tree of any request over a threshold.

``repro.obs.http``
    A tiny stdlib HTTP listener serving ``/metrics`` (Prometheus text
    format) and ``/healthz`` — wired to ``serve|cluster
    --metrics-port``.

``repro.obs.dashboard``
    Rendering for ``repro stats --format table|csv|json`` and the
    ``repro top`` terminal dashboard (per-backend rps, p50/p95/p99,
    view-cache hit rate, pool fallbacks, ring health).

Everything here is stdlib-only and cheap enough to stay on by default:
the cached hot path with tracing enabled is ratio-guarded (≤ 5%
overhead) by ``benchmarks/test_obs_bench.py``.
"""

from repro.obs.dashboard import render_stats, render_top
from repro.obs.http import MetricsServer
from repro.obs.registry import (
    BYTE_BUCKETS,
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, TraceRecord, Tracer, format_span_tree, new_trace_id

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "TraceRecord",
    "Tracer",
    "format_span_tree",
    "new_trace_id",
    "render_stats",
    "render_top",
]
