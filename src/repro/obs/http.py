"""Tiny stdlib HTTP listener exposing the metrics registry.

``MetricsServer`` serves two endpoints on a daemon thread:

``GET /metrics``
    The registry rendered in Prometheus text exposition format 0.0.4
    (scrape it with curl or point a real Prometheus at it).

``GET /healthz``
    ``ok`` with status 200 — a liveness probe for drills.

It is intentionally *not* the wire protocol's asyncio loop: scraping
must keep working while the event loop is busy streaming chunks, and a
blocked scrape must never back-pressure query traffic.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsServer"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set on the subclass built per server

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            try:
                body = self.registry.render().encode("utf-8")
            except Exception as exc:
                self._reply(500, ("# render error: %s\n" % exc).encode("utf-8"))
                return
            self._reply(200, body)
        elif path == "/healthz":
            self._reply(200, b"ok\n")
        else:
            self._reply(404, b"not found\n")

    def _reply(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


class MetricsServer:
    """Serve ``registry`` over HTTP on ``host:port`` (daemon thread)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int,
        host: str = "127.0.0.1",
    ) -> None:
        handler = type("_BoundHandler", (_Handler,), {"registry": registry})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.host, self.port = self._server.server_address[:2]

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-%d" % self.port,
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
