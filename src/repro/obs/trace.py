"""Request tracing: trace ids, spans, ring buffer, slow-query log.

A **trace id** is a nonzero 64-bit integer minted at the client or
gateway (``new_trace_id``) and carried hop-to-hop in the wire frame
header (protocol version 2 — see ``repro.server.protocol``).  Requests
with trace id 0 pay *nothing*: every instrumentation site guards on
``if trace:`` before touching the tracer.

Each process keeps one ``Tracer``.  Spans are recorded against a trace
id (either live via ``start``/``finish`` or post-hoc via ``record``,
which is how pipeline stage timings become spans without re-running the
clock), and ``end_trace`` closes the trace: the finished span tree goes
into a bounded ring buffer, and — when the trace's duration crosses the
``slow_ms`` threshold — into the slow-query log with its *full* span
tree preserved.

Cross-process assembly: a backend serializes its finished spans into
the RESULT trailer; the gateway ``adopt``s them under its own forward
span (remapping span ids so two processes can never collide), so the
gateway's slow-query log shows the complete journey: gateway routing →
backend queueing → pipeline stages → compute dispatch.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from itertools import count as _count
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "TraceRecord",
    "Tracer",
    "format_span_tree",
    "new_trace_id",
    "spans_from_wire",
]

_TRACE_MASK = (1 << 64) - 1


def new_trace_id(rng: Optional[Any] = None) -> int:
    """Mint a nonzero 64-bit trace id.

    Pass a seeded ``random.Random`` as ``rng`` for reproducible ids
    (loadgen stamps deterministic trace ids under ``--seed``).
    """
    if rng is not None:
        return (rng.getrandbits(64) & _TRACE_MASK) | 1
    return (int.from_bytes(os.urandom(8), "big") & _TRACE_MASK) | 1


def format_trace_id(trace: int) -> str:
    return "%016x" % (trace & _TRACE_MASK)


class Span:
    """One timed operation inside a trace."""

    __slots__ = ("trace", "id", "parent", "name", "start", "end", "attrs")

    def __init__(
        self,
        trace: int,
        span_id: int,
        parent: int,
        name: str,
        start: float,
    ) -> None:
        self.trace = trace
        self.id = span_id
        self.parent = parent
        self.name = name
        self.start = start
        self.end = start
        # Lazily populated: most spans carry no attributes, and the
        # ones that do take ownership of the caller's kwargs dict.
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration_ms(self) -> float:
        return max(0.0, (self.end - self.start) * 1000.0)

    def as_dict(self, base: float) -> Dict[str, Any]:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start_ms": round((self.start - base) * 1000.0, 3),
            "duration_ms": round(self.duration_ms, 3),
            "attrs": dict(self.attrs) if self.attrs else {},
        }

# Attr values land in the delimited wire string; delimiters inside a
# value would desync the parser, so they degrade to "_".
_WIRE_UNSAFE = str.maketrans({";": "_", "|": "_", ",": "_", "=": "_"})


def _attr_value(text: str) -> Any:
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def spans_from_wire(entries: Any) -> List[Dict[str, Any]]:
    """Expand trailer spans to sorted display dicts.

    Accepts the compact delimited string emitted by
    ``TraceRecord.wire_spans`` (span ids are 1-based positions;
    ``name|parent|start_us|duration_us[|k=v,...]`` joined with ``;``)
    or a list of already-expanded dicts.
    """
    if not entries:
        return []
    if not isinstance(entries, str):
        spans = [dict(entry) for entry in entries]
        spans.sort(key=lambda span: span.get("start_ms", 0.0))
        return spans
    spans = []
    for index, part in enumerate(entries.split(";"), 1):
        fields = part.split("|")
        if len(fields) < 4:
            continue
        attrs: Dict[str, Any] = {}
        if len(fields) > 4 and fields[4]:
            for pair in fields[4].split(","):
                key, _, value = pair.partition("=")
                attrs[key] = _attr_value(value)
        spans.append(
            {
                "id": index,
                "parent": int(fields[1]),
                "name": fields[0],
                "start_ms": int(fields[2]) / 1000.0,
                "duration_ms": int(fields[3]) / 1000.0,
                "attrs": attrs,
            }
        )
    spans.sort(key=lambda span: span.get("start_ms", 0.0))
    return spans


class TraceRecord:
    """A finished trace: the id, total duration and the span tree.

    Raw ``Span`` objects are retained as-is; the human-facing dict form
    (``spans``/``as_dict``) is built lazily on first access so closing
    a trace on the hot path pays no per-span conversion.
    """

    __slots__ = ("trace", "root_name", "duration_ms", "slow", "_raw", "_spans")

    def __init__(
        self,
        trace: int,
        root_name: str,
        duration_ms: float,
        raw_spans: List[Span],
    ) -> None:
        self.trace = trace
        self.root_name = root_name
        self.duration_ms = duration_ms
        self.slow = False
        self._raw = raw_spans
        self._spans: Optional[List[Dict[str, Any]]] = None

    @property
    def spans(self) -> List[Dict[str, Any]]:
        if self._spans is None:
            base = min(span.start for span in self._raw)
            self._spans = [
                span.as_dict(base)
                for span in sorted(self._raw, key=lambda span: span.start)
            ]
        return self._spans

    def wire_spans(self) -> str:
        """Compact trailer form, one delimited string.

        ``name|parent|start_us|duration_us[|k=v,...]`` per span, joined
        with ``;``; span ids become 1-based positions.  One short string
        keeps the traced RESULT trailer cheap to JSON-encode and small
        on the wire — this rides every traced response, so it is
        hot-path (see ``benchmarks/test_obs_bench.py``).
        """
        raw = self._raw
        base = raw[0].start
        for span in raw:
            if span.start < base:
                base = span.start
        position = {span.id: index for index, span in enumerate(raw, 1)}
        parts = []
        for span in raw:
            head = "%s|%d|%d|%d" % (
                span.name,
                position.get(span.parent, 0),
                int((span.start - base) * 1e6),
                int((span.end - span.start) * 1e6) if span.end > span.start else 0,
            )
            attrs = span.attrs
            if attrs:
                pairs = []
                for key, value in attrs.items():
                    if type(value) is int:
                        pairs.append("%s=%d" % (key, value))
                        continue
                    text = str(value)
                    if (
                        "=" in text or "," in text or ";" in text or "|" in text
                    ):
                        text = text.translate(_WIRE_UNSAFE)
                    pairs.append(key + "=" + text)
                head = head + "|" + ",".join(pairs)
            parts.append(head)
        return ";".join(parts)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace": format_trace_id(self.trace),
            "root": self.root_name,
            "duration_ms": round(self.duration_ms, 3),
            "slow": self.slow,
            "spans": self.spans,
        }


class Tracer:
    """Per-process span recorder with bounded retention.

    ``capacity`` bounds the finished-trace ring, ``slow_capacity`` the
    slow-query log, and in-progress traces are capped at
    ``4 * capacity`` (oldest dropped first) so a client that never
    closes its traces cannot grow memory without bound.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_ms: Optional[float] = None,
        slow_capacity: int = 64,
        slow_sink: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._active: Dict[int, List[Span]] = {}
        self._max_active = max(16, capacity * 4)
        # itertools.count increments atomically in C — the recording
        # hot path takes no lock (dict/list/deque single ops are each
        # atomic under the GIL; the started/finished/dropped counters
        # are best-effort under concurrency, which stats() documents).
        self._seq = _count(1)
        # Span-id namespace: a random 16-bit prefix per tracer keeps
        # locally minted ids from colliding with adopted remote ids.
        self._base = (int.from_bytes(os.urandom(2), "big") | 1) << 32
        self.records: deque = deque(maxlen=capacity)
        self.slow_log: deque = deque(maxlen=slow_capacity)
        self.slow_ms = slow_ms
        self.slow_sink = slow_sink
        self.started = 0
        self.finished = 0
        self.dropped = 0
        self.slow = 0

    # -- recording -----------------------------------------------------
    def _new_span(self, trace: int, name: str, parent: int, start: float) -> Span:
        span = Span(trace, self._base + next(self._seq), parent, name, start)
        spans = self._active.get(trace)
        if spans is None:
            if len(self._active) >= self._max_active:
                with self._lock:
                    while len(self._active) >= self._max_active:
                        victim = next(iter(self._active))
                        del self._active[victim]
                        self.dropped += 1
            spans = self._active.setdefault(trace, [])
            self.started += 1
        spans.append(span)
        return span

    def start(self, trace: int, name: str, parent: int = 0, **attrs: Any) -> Span:
        span = self._new_span(trace, name, parent, perf_counter())
        if attrs:
            span.attrs = attrs
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        span.end = perf_counter()
        if attrs:
            if span.attrs:
                span.attrs.update(attrs)
            else:
                span.attrs = attrs
        return span

    def record(
        self,
        trace: int,
        name: str,
        start: float,
        end: float,
        parent: int = 0,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record a span whose start/end were measured elsewhere (e.g.
        pipeline stage timings taken by ``DocumentPipeline.run``).

        Takes ownership of ``attrs`` — pass a fresh dict.
        """
        span = self._new_span(trace, name, parent, start)
        span.end = end
        if attrs:
            span.attrs = attrs
        return span

    def adopt(
        self,
        trace: int,
        wire_or_dicts: Any,
        parent: int = 0,
    ) -> int:
        """Graft spans serialized by another process under ``parent``.

        Accepts the compact wire string from a RESULT trailer or a list
        of span dicts.  Remote span ids are remapped into this tracer's
        namespace; remote roots (parent 0 or unknown) are re-parented
        to ``parent``.  Returns the number of spans adopted.
        """
        spans = spans_from_wire(wire_or_dicts)
        if not spans:
            return 0
        mapping: Dict[int, int] = {}
        now = perf_counter()
        for data in spans:
            mapping[int(data.get("id", 0))] = self._base + next(self._seq)
        target = self._active.setdefault(trace, [])
        for data in spans:
            span = Span(
                trace,
                mapping[int(data.get("id", 0))],
                mapping.get(int(data.get("parent", 0)), parent),
                str(data.get("name", "?")),
                now,
            )
            span.end = now + float(data.get("duration_ms", 0.0)) / 1000.0
            span.attrs = dict(data.get("attrs") or {})
            span.attrs.setdefault("remote_start_ms", data.get("start_ms", 0.0))
            target.append(span)
        return len(spans)

    # -- completion ----------------------------------------------------
    def end_trace(self, trace: int, root: Optional[Span] = None) -> Optional[TraceRecord]:
        """Close ``trace``: build its record, retain it, flag it slow.

        Callers that hold the request's root span pass it as ``root``
        to skip the scan for it — this runs once per traced request.
        """
        spans = self._active.pop(trace, None)
        if not spans:
            return None
        if root is None:
            roots = [span for span in spans if span.parent == 0]
            root = min(roots or spans, key=lambda span: span.start)
        duration_ms = root.duration_ms
        record = TraceRecord(trace, root.name, duration_ms, spans)
        slow = self.slow_ms is not None and duration_ms >= self.slow_ms
        record.slow = slow
        self.finished += 1
        self.records.append(record)
        if slow:
            self.slow += 1
            self.slow_log.append(record)
            if self.slow_sink is not None:
                try:
                    self.slow_sink(record)
                except Exception:  # pragma: no cover - sink is best-effort
                    pass
        return record

    def discard(self, trace: int) -> None:
        """Drop an in-progress trace without recording it."""
        if self._active.pop(trace, None) is not None:
            self.dropped += 1

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "started": self.started,
                "finished": self.finished,
                "dropped": self.dropped,
                "slow_queries": self.slow,
                "retained": len(self.records),
                "slow_ms": self.slow_ms,
            }

    def slow_records(self, limit: int = 5) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self.slow_log)[-limit:]
        return [record.as_dict() for record in records]


def format_span_tree(record: Dict[str, Any]) -> str:
    """Render a ``TraceRecord.as_dict()`` as an indented tree."""
    spans = record.get("spans") or []
    by_id = {span["id"]: span for span in spans}
    children: Dict[int, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent", 0)
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    lines = [
        "trace %s %s %.1fms%s"
        % (
            record.get("trace", "?"),
            record.get("root", "?"),
            record.get("duration_ms", 0.0),
            " SLOW" if record.get("slow") else "",
        )
    ]

    def emit(span: Dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        suffix = "".join(
            " %s=%s" % (key, value)
            for key, value in sorted(attrs.items())
            if key != "remote_start_ms"
        )
        lines.append(
            "%s%s %.2fms%s"
            % ("  " * depth, span.get("name", "?"), span.get("duration_ms", 0.0), suffix)
        )
        for child in sorted(
            children.get(span["id"], ()), key=lambda s: s.get("start_ms", 0.0)
        ):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("start_ms", 0.0)):
        emit(root, 1)
    return "\n".join(lines)
