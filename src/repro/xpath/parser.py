"""Tokenizer and recursive-descent parser for ``XP{[],*,//}``.

Grammar (whitespace insignificant outside quoted strings)::

    path        := ('/' | '//')? step (('/' | '//') step)*
    step        := test predicate*
    test        := NAME | '*' | '.' | '@' NAME
    predicate   := '[' rel_path (op literal)? ']'
    rel_path    := ('//')? step (('/' | '//') step)* | '.'
    op          := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal     := NUMBER | STRING | NAME      (bare names are strings,
                                                'USER' is the subject
                                                variable)

Paths occurring at top level default to *absolute*; a leading ``//``
makes the first step use the descendant axis (matching at any depth), a
leading ``/`` the child axis (the root element itself must match).
Predicate paths are relative to the step's element; a leading ``//``
searches the whole subtree.  ``@name`` attribute tests map onto the
synthetic ``@name`` elements produced by the XML parser.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.xpath.ast import (
    AXIS_CHILD,
    AXIS_DESCENDANT,
    SELF,
    USER_VARIABLE,
    Comparison,
    Path,
    Predicate,
    Step,
)


class XPathSyntaxError(ValueError):
    """Raised on malformed XPath input."""

    def __init__(self, message: str, expression: str, position: int):
        super().__init__(
            "%s in %r at position %d" % (message, expression, position)
        )
        self.expression = expression
        self.position = position


# Token kinds
_SLASH = "/"
_DSLASH = "//"
_LBRACKET = "["
_RBRACKET = "]"
_NAME = "name"
_STAR = "*"
_DOT = "."
_OP = "op"
_STRING = "string"
_NUMBER = "number"
_END = "end"

Token = Tuple[str, object, int]


def _tokenize(expression: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    length = len(expression)
    while i < length:
        ch = expression[i]
        if ch.isspace():
            i += 1
        elif ch == "/":
            if i + 1 < length and expression[i + 1] == "/":
                tokens.append((_DSLASH, "//", i))
                i += 2
            else:
                tokens.append((_SLASH, "/", i))
                i += 1
        elif ch == "[":
            tokens.append((_LBRACKET, "[", i))
            i += 1
        elif ch == "]":
            tokens.append((_RBRACKET, "]", i))
            i += 1
        elif ch == "*":
            tokens.append((_STAR, "*", i))
            i += 1
        elif ch == ".":
            if i + 1 < length and expression[i + 1].isdigit():
                i = _read_number(expression, i, tokens)
            else:
                tokens.append((_DOT, ".", i))
                i += 1
        elif ch in "=<>!":
            if expression.startswith("<=", i) or expression.startswith(
                ">=", i
            ) or expression.startswith("!=", i):
                tokens.append((_OP, expression[i : i + 2], i))
                i += 2
            elif ch == "!":
                raise XPathSyntaxError("stray '!'", expression, i)
            else:
                tokens.append((_OP, ch, i))
                i += 1
        elif ch in "\"'":
            end = expression.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string", expression, i)
            tokens.append((_STRING, expression[i + 1 : end], i))
            i = end + 1
        elif ch.isdigit() or (
            ch == "-" and i + 1 < length and expression[i + 1].isdigit()
        ):
            i = _read_number(expression, i, tokens)
        elif ch.isalpha() or ch in "_@":
            j = i + 1
            while j < length and (expression[j].isalnum() or expression[j] in "_-.:"):
                j += 1
            # A name followed by more path must not eat a trailing '.'
            name = expression[i:j]
            while name.endswith("."):
                name = name[:-1]
                j -= 1
            tokens.append((_NAME, name, i))
            i = j
        else:
            raise XPathSyntaxError("unexpected character %r" % ch, expression, i)
    tokens.append((_END, None, length))
    return tokens


def _read_number(expression: str, i: int, tokens: List[Token]) -> int:
    j = i
    if expression[j] == "-":
        j += 1
    while j < len(expression) and (expression[j].isdigit() or expression[j] == "."):
        j += 1
    text = expression[i:j]
    value: object
    if "." in text:
        value = float(text)
    else:
        value = int(text)
    tokens.append((_NUMBER, value, i))
    return j


class _Parser:
    def __init__(self, expression: str):
        self.expression = expression
        self.tokens = _tokenize(expression)
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.advance()
        if token[0] != kind:
            raise XPathSyntaxError(
                "expected %s, got %r" % (kind, token[1]), self.expression, token[2]
            )
        return token

    def error(self, message: str) -> XPathSyntaxError:
        token = self.peek()
        return XPathSyntaxError(message, self.expression, token[2])

    # ------------------------------------------------------------------
    def parse_path(self, absolute: bool) -> Path:
        steps: List[Step] = []
        kind = self.peek()[0]
        if kind == _DSLASH:
            self.advance()
            first_axis = AXIS_DESCENDANT
        elif kind == _SLASH:
            self.advance()
            first_axis = AXIS_CHILD
        elif absolute:
            # Allow 'a/b' as shorthand for '/a/b' at top level.
            first_axis = AXIS_CHILD
        else:
            first_axis = AXIS_CHILD
        steps.append(self.parse_step(first_axis))
        while True:
            kind = self.peek()[0]
            if kind == _SLASH:
                self.advance()
                steps.append(self.parse_step(AXIS_CHILD))
            elif kind == _DSLASH:
                self.advance()
                steps.append(self.parse_step(AXIS_DESCENDANT))
            else:
                break
        return Path(steps, absolute=absolute)

    def parse_step(self, axis: str) -> Step:
        token = self.advance()
        if token[0] == _NAME:
            test = str(token[1])
        elif token[0] == _STAR:
            test = "*"
        elif token[0] == _DOT:
            test = SELF
        else:
            raise XPathSyntaxError(
                "expected a node test, got %r" % (token[1],),
                self.expression,
                token[2],
            )
        predicates: List[Predicate] = []
        while self.peek()[0] == _LBRACKET:
            predicates.append(self.parse_predicate())
        if test == SELF and predicates:
            raise XPathSyntaxError(
                "predicates on '.' are not supported", self.expression, token[2]
            )
        return Step(axis, test, predicates)

    def parse_predicate(self) -> Predicate:
        self.expect(_LBRACKET)
        if self.peek()[0] == _DOT:
            # `[. op literal]` compares the current element's content.
            dot = self.advance()
            path = Path([Step(AXIS_CHILD, SELF)], absolute=False)
            if self.peek()[0] != _OP:
                raise XPathSyntaxError(
                    "'[.]' requires a comparison", self.expression, dot[2]
                )
        else:
            path = self.parse_path(absolute=False)
        comparison: Optional[Comparison] = None
        if self.peek()[0] == _OP:
            op_token = self.advance()
            literal_token = self.advance()
            if literal_token[0] == _NAME:
                literal: object = (
                    USER_VARIABLE
                    if literal_token[1] == "USER"
                    else str(literal_token[1])
                )
            elif literal_token[0] in (_STRING, _NUMBER):
                literal = literal_token[1]
            else:
                raise XPathSyntaxError(
                    "expected a literal after %r" % (op_token[1],),
                    self.expression,
                    literal_token[2],
                )
            comparison = Comparison(str(op_token[1]), literal)  # type: ignore[arg-type]
        self.expect(_RBRACKET)
        return Predicate(path, comparison)


#: Process-wide count of :func:`parse_xpath` invocations (the plan
#: cache's other amortized cost; see :func:`repro.xpath.nfa.compile_calls`).
_parse_calls = 0


def parse_calls() -> int:
    """Total number of XPath parses so far in this process."""
    return _parse_calls


def parse_xpath(expression: str) -> Path:
    """Parse ``expression`` into an absolute :class:`Path`.

    Raises :class:`XPathSyntaxError` on malformed input or constructs
    outside ``XP{[],*,//}``.
    """
    global _parse_calls
    _parse_calls += 1
    parser = _Parser(expression)
    if parser.peek()[0] == _END:
        raise XPathSyntaxError("empty expression", expression, 0)
    path = parser.parse_path(absolute=True)
    token = parser.peek()
    if token[0] != _END:
        raise XPathSyntaxError(
            "trailing input %r" % (token[1],), expression, token[2]
        )
    for step in path.steps:
        if step.is_self():
            raise XPathSyntaxError(
                "'.' steps are only allowed inside predicates", expression, 0
            )
    return path
