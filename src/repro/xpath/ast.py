"""Abstract syntax tree for the XPath fragment ``XP{[],*,//}``.

A :class:`Path` is a sequence of :class:`Step`.  Each step has an axis
(child or descendant), a node test (an element tag, the wildcard ``*``
or the self test ``.``) and an optional list of :class:`Predicate`.  A
predicate is a relative :class:`Path` optionally compared to a literal
with one of ``= != < <= > >=`` (a :class:`Comparison`).

The special literal ``USER`` refers to the subject evaluating the policy
(the paper's ``//MedActs[//RPhys = USER]``); it is substituted at policy
binding time (:meth:`Comparison.bind_user`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

AXIS_CHILD = "/"
AXIS_DESCENDANT = "//"

WILDCARD = "*"
SELF = "."

#: Marker object for the ``USER`` variable in comparisons.
USER_VARIABLE = "\x00USER\x00"

Literal = Union[str, float, int]


class Comparison:
    """A comparison ``op literal`` terminating a predicate path.

    ``operator`` is one of ``= != < <= > >=``; ``literal`` is a number,
    a string, or :data:`USER_VARIABLE`.
    """

    __slots__ = ("operator", "literal")

    _OPERATORS = ("=", "!=", "<", "<=", ">", ">=")

    def __init__(self, operator: str, literal: Literal):
        if operator not in self._OPERATORS:
            raise ValueError("unsupported comparison operator %r" % operator)
        self.operator = operator
        self.literal = literal

    def bind_user(self, user: str) -> "Comparison":
        """Return a copy with :data:`USER_VARIABLE` replaced by ``user``."""
        if self.literal == USER_VARIABLE:
            return Comparison(self.operator, user)
        return self

    def matches(self, text: str) -> bool:
        """Evaluate the comparison against element content ``text``.

        Numeric comparison is used when both sides parse as numbers
        (XPath-style coercion); otherwise a string comparison is used.
        """
        if self.literal == USER_VARIABLE:
            raise ValueError("comparison against unbound USER variable")
        literal = self.literal
        if isinstance(literal, (int, float)):
            try:
                value: Literal = float(text.strip())
            except ValueError:
                return self.operator == "!="
            other: Literal = float(literal)
        else:
            value = text.strip()
            other = literal
            try:
                value = float(value)
                other = float(str(literal).strip())
            except ValueError:
                value = text.strip()
                other = str(literal)
        if self.operator == "=":
            return value == other
        if self.operator == "!=":
            return value != other
        if self.operator == "<":
            return value < other
        if self.operator == "<=":
            return value <= other
        if self.operator == ">":
            return value > other
        return value >= other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Comparison):
            return NotImplemented
        return self.operator == other.operator and self.literal == other.literal

    def __hash__(self) -> int:
        return hash((self.operator, self.literal))

    def __str__(self) -> str:
        if self.literal == USER_VARIABLE:
            rendered = "USER"
        elif isinstance(self.literal, str):
            rendered = '"%s"' % self.literal
        else:
            rendered = repr(self.literal)
        return "%s %s" % (self.operator, rendered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Comparison(%r, %r)" % (self.operator, self.literal)


class Predicate:
    """A branch ``[path]`` or ``[path op literal]`` attached to a step."""

    __slots__ = ("path", "comparison")

    def __init__(self, path: "Path", comparison: Optional[Comparison] = None):
        self.path = path
        self.comparison = comparison

    def bind_user(self, user: str) -> "Predicate":
        comparison = self.comparison.bind_user(user) if self.comparison else None
        return Predicate(self.path.bind_user(user), comparison)

    def is_existence(self) -> bool:
        """True for bare ``[path]`` predicates without a comparison."""
        return self.comparison is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self.path == other.path and self.comparison == other.comparison

    def __hash__(self) -> int:
        return hash((self.path, self.comparison))

    def __str__(self) -> str:
        body = self.path.to_string(relative=True)
        if self.comparison is not None:
            body = "%s %s" % (body, self.comparison)
        return "[%s]" % body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Predicate(%s)" % self


class Step:
    """One location step: axis + node test + predicates."""

    __slots__ = ("axis", "test", "predicates")

    def __init__(
        self,
        axis: str,
        test: str,
        predicates: Optional[Sequence[Predicate]] = None,
    ):
        if axis not in (AXIS_CHILD, AXIS_DESCENDANT):
            raise ValueError("unsupported axis %r" % axis)
        self.axis = axis
        self.test = test
        self.predicates: Tuple[Predicate, ...] = tuple(predicates or ())

    def bind_user(self, user: str) -> "Step":
        return Step(self.axis, self.test, [p.bind_user(user) for p in self.predicates])

    def is_wildcard(self) -> bool:
        return self.test == WILDCARD

    def is_self(self) -> bool:
        return self.test == SELF

    def matches_tag(self, tag: str) -> bool:
        """True if the node test accepts ``tag``."""
        return self.test == WILDCARD or self.test == tag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Step):
            return NotImplemented
        return (
            self.axis == other.axis
            and self.test == other.test
            and self.predicates == other.predicates
        )

    def __hash__(self) -> int:
        return hash((self.axis, self.test, self.predicates))

    def __str__(self) -> str:
        return "%s%s%s" % (self.axis, self.test, "".join(str(p) for p in self.predicates))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Step(%r)" % str(self)


class Path:
    """A sequence of steps, absolute (rules, queries) or relative
    (predicate bodies)."""

    __slots__ = ("steps", "absolute")

    def __init__(self, steps: Sequence[Step], absolute: bool = True):
        self.steps: Tuple[Step, ...] = tuple(steps)
        self.absolute = absolute

    def bind_user(self, user: str) -> "Path":
        return Path([s.bind_user(user) for s in self.steps], self.absolute)

    def has_predicates(self) -> bool:
        """True if any step (recursively) carries a predicate."""
        for step in self.steps:
            if step.predicates:
                return True
        return False

    def has_descendant_axis(self) -> bool:
        for step in self.steps:
            if step.axis == AXIS_DESCENDANT:
                return True
            for predicate in step.predicates:
                if predicate.path.has_descendant_axis():
                    return True
        return False

    def required_labels(self) -> frozenset:
        """Set of element tags that *must* occur for the path to match.

        Wildcards and self steps contribute nothing.  Predicate labels
        are included: a rule cannot become *active* in a subtree missing
        any of them.  This feeds the Skip-index token filtering
        (``RemainingLabels``, Section 4.2).
        """
        labels = set()
        for step in self.steps:
            if step.test not in (WILDCARD, SELF):
                labels.add(step.test)
            for predicate in step.predicates:
                labels |= predicate.path.required_labels()
        return frozenset(labels)

    def trigger_labels(self) -> Optional[frozenset]:
        """Every concrete label that can fire *any* transition of the
        automaton compiled from this path (navigational steps and all
        predicate chains, recursively) — the dual of
        :meth:`required_labels`, feeding the skip-pruned replay: a
        subtree containing none of these labels can never advance the
        rule.  Returns ``None`` when a wildcard step makes every label
        a trigger (pruning is then impossible for this path).
        """
        labels = set()
        for step in self.steps:
            if step.test == WILDCARD:
                return None
            if step.test != SELF:
                labels.add(step.test)
            for predicate in step.predicates:
                inner = predicate.path.trigger_labels()
                if inner is None:
                    return None
                labels |= inner
        return frozenset(labels)

    def to_string(self, relative: bool = False) -> str:
        parts: List[str] = []
        for index, step in enumerate(self.steps):
            rendered = str(step)
            if index == 0 and (relative or not self.absolute):
                if step.axis == AXIS_CHILD:
                    rendered = rendered[1:]  # drop leading '/'
            parts.append(rendered)
        return "".join(parts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.steps == other.steps and self.absolute == other.absolute

    def __hash__(self) -> int:
        return hash((self.steps, self.absolute))

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return self.to_string(relative=not self.absolute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Path(%r)" % str(self)
