"""XPath fragment ``XP{[],*,//}`` (Miklau & Suciu) used by the paper.

The access-control model delineates rule scopes with XPath expressions
drawn from the fragment consisting of node tests, the child axis (``/``),
the descendant axis (``//``), wildcards (``*``) and predicates
(``[...]``) — Section 2 of the paper.  Queries use the same fragment.

* :mod:`repro.xpath.ast` — the abstract syntax tree;
* :mod:`repro.xpath.parser` — tokenizer and recursive-descent parser;
* :mod:`repro.xpath.nfa` — compilation to the non-deterministic Access
  Rule Automata of Section 3.1 (navigational path + predicate paths,
  ``*`` self-loops for ``//``);
* :mod:`repro.xpath.containment` — a sound (incomplete) containment
  test used by the static policy optimizer (Section 3.3).
"""

from repro.xpath.ast import (
    AXIS_CHILD,
    AXIS_DESCENDANT,
    Comparison,
    Path,
    Predicate,
    Step,
)
from repro.xpath.parser import XPathSyntaxError, parse_xpath
from repro.xpath.nfa import Automaton, AutomatonState, compile_path

__all__ = [
    "AXIS_CHILD",
    "AXIS_DESCENDANT",
    "Path",
    "Step",
    "Predicate",
    "Comparison",
    "parse_xpath",
    "XPathSyntaxError",
    "Automaton",
    "AutomatonState",
    "compile_path",
]
