"""Sound (incomplete) containment test for ``XP{[],*,//}``.

Section 3.3 considers exploiting query containment to simplify a system
of rules, while noting that containment for this fragment is coNP-
complete [MiS02].  We implement the classical *homomorphism* test
(Miklau & Suciu): ``covers(p, q)`` returns True only if every node
matched by ``q`` is matched by ``p`` (sound); it may return False for
some contained pairs (incomplete) — exactly the trade-off the paper
alludes to with [ACL01].

The test searches for a homomorphism from ``p``'s tree pattern into
``q``'s tree pattern:

* the roots map to each other, output node to output node;
* a node labelled ``*`` maps to any node; a concrete label only to the
  same label;
* a child edge maps to a child edge; a descendant edge to any downward
  path of length >= 1;
* a comparison on a ``p`` predicate leaf must be *implied* by a
  comparison on the image node.
"""

from __future__ import annotations

from typing import List, Optional

from repro.xpath.ast import AXIS_DESCENDANT, WILDCARD, Comparison, Path

_CHILD = 0
_DESCENDANT = 1


class PatternNode:
    """A node of a tree pattern (the standard containment formalism)."""

    __slots__ = ("label", "axis", "children", "is_output", "comparison")

    def __init__(self, label: str, axis: int):
        self.label = label
        self.axis = axis  # edge type from the parent
        self.children: List["PatternNode"] = []
        self.is_output = False
        self.comparison: Optional[Comparison] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PatternNode(%r%s)" % (self.label, "!" if self.is_output else "")


def build_pattern(path: Path) -> PatternNode:
    """Tree pattern of an absolute path; the root is the document node."""
    root = PatternNode("", _CHILD)
    _extend(root, path, mark_output=True)
    return root


def _extend(anchor: PatternNode, path: Path, mark_output: bool) -> None:
    current = anchor
    last: Optional[PatternNode] = None
    for step in path.steps:
        if step.is_self():
            last = current
            continue
        axis = _DESCENDANT if step.axis == AXIS_DESCENDANT else _CHILD
        node = PatternNode(step.test, axis)
        current.children.append(node)
        for predicate in step.predicates:
            branch_holder = PatternNode("", _CHILD)
            _extend(branch_holder, predicate.path, mark_output=False)
            if branch_holder.children:
                leaf = _deepest(branch_holder.children[0])
                if predicate.comparison is not None:
                    leaf.comparison = predicate.comparison
                node.children.extend(branch_holder.children)
            elif predicate.comparison is not None:
                # `[. op lit]`: the comparison sits on the node itself.
                node.comparison = _merge_comparison(
                    node.comparison, predicate.comparison
                )
        current = node
        last = node
    if mark_output and last is not None:
        last.is_output = True


def _deepest(node: PatternNode) -> PatternNode:
    current = node
    while current.children:
        current = current.children[0]
    return current


def _merge_comparison(
    existing: Optional[Comparison], new: Comparison
) -> Comparison:
    # Multiple self comparisons are rare; keep the last (sound because
    # the homomorphism then requires implying only that one — it may
    # lose completeness, never soundness, for the *containee* side;
    # for the container side extra constraints only make covers()
    # return False more often, which is also sound).
    del existing
    return new


def _label_covers(general: str, specific: str) -> bool:
    return general == WILDCARD or general == specific


def _comparison_implies(
    specific: Optional[Comparison], general: Optional[Comparison]
) -> bool:
    """Does ``specific`` (on q's node) imply ``general`` (on p's)?"""
    if general is None:
        return True
    if specific is None:
        return False
    if specific == general:
        return True
    if (
        isinstance(specific.literal, (int, float))
        and isinstance(general.literal, (int, float))
    ):
        s_op, s_val = specific.operator, float(specific.literal)
        g_op, g_val = general.operator, float(general.literal)
        if s_op == "=":
            return general.matches(repr(s_val))
        if s_op in (">", ">=") and g_op in (">", ">="):
            edge = s_val if s_op == ">=" else s_val  # lower bound
            if g_op == ">":
                return edge > g_val or (s_op == ">" and edge >= g_val)
            return edge >= g_val
        if s_op in ("<", "<=") and g_op in ("<", "<="):
            if g_op == "<":
                return s_val < g_val or (s_op == "<" and s_val <= g_val)
            return s_val <= g_val
    return False


def _node_maps(p: PatternNode, q: PatternNode) -> bool:
    """Can ``p``'s subtree be embedded at ``q`` (labels/comparisons/
    children)?  Output flags are handled by the caller."""
    if not _label_covers(p.label, q.label):
        return False
    if not _comparison_implies(q.comparison, p.comparison):
        return False
    for p_child in p.children:
        if not _child_embeds(p_child, q):
            return False
    return True


def _child_embeds(p_child: PatternNode, q_parent: PatternNode) -> bool:
    """Embed ``p_child`` below ``q_parent`` honouring the edge type."""
    if p_child.axis == _CHILD:
        # A child edge can only map onto a child edge: a descendant
        # edge in q admits instances with intermediate elements.
        return any(
            _maps_with_output(p_child, q)
            for q in q_parent.children
            if q.axis == _CHILD
        )
    # Descendant edge: any strictly lower node of q's pattern.
    stack = list(q_parent.children)
    while stack:
        q = stack.pop()
        if _maps_with_output(p_child, q):
            return True
        stack.extend(q.children)
    return False


def _maps_with_output(p: PatternNode, q: PatternNode) -> bool:
    if p.is_output and not q.is_output:
        return False
    return _node_maps(p, q)


def covers(general: Path, specific: Path) -> bool:
    """True only if ``general`` matches every node ``specific`` matches.

    Sound but incomplete (homomorphism test).  Both paths must be
    absolute.
    """
    p_root = build_pattern(general)
    q_root = build_pattern(specific)
    # Map the virtual document roots onto each other, then embed.
    for p_child in p_root.children:
        if not _child_embeds(p_child, q_root):
            return False
    return True


def scope_covers(general: Path, specific: Path) -> bool:
    """True only if ``general``'s *scope* contains ``specific``'s scope.

    Access rules propagate to all descendants of their objects
    (Section 2), so the relation that matters for rule redundancy is
    containment of the descendant-or-self closures: ``scope(S) ⊆
    scope(R)`` holds iff every S-match lies inside some R-match's
    subtree — i.e. is matched by ``R`` or by ``R//*``.
    """
    if covers(general, specific):
        return True
    from repro.xpath.ast import Step

    extended = Path(
        tuple(general.steps) + (Step(AXIS_DESCENDANT, WILDCARD),),
        absolute=True,
    )
    return covers(extended, specific)
