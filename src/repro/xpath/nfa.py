"""Compilation of ``XP{[],*,//}`` paths into Access Rule Automata (ARA).

Section 3.1 of the paper represents every access rule by a
non-deterministic finite automaton with one *navigational path* and
optionally several *predicate paths*.  Directed edges are triggered by
``open`` events matching the edge label (a tag or ``*``); the descendant
axis is modelled by a ``*`` self-transition on the source state.

Our construction mirrors this exactly:

* each :class:`Step` with the child axis adds one transition
  ``src --test--> dst``;
* each step with the descendant axis sets a ``*`` self-loop on ``src``
  and adds ``src --test--> dst``;
* each predicate ``[rel_path (op lit)?]`` on a step is compiled into its
  own linear chain of *predicate states* anchored at the step's
  destination state: when a navigational token enters the destination,
  a fresh *predicate token* is spawned at the chain's start (labelled
  with the current document depth — the *rule instance* discipline of
  Section 3.1);
* predicate chains may themselves carry nested predicates; the anchoring
  mechanism is uniform.

Every state precomputes ``remaining_labels``: the set of element tags
that must necessarily be encountered for the rule to become *active*
from this state (used by the Skip-index token filtering of Section 4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.xpath.ast import (
    AXIS_DESCENDANT,
    WILDCARD,
    Comparison,
    Path,
    Predicate,
    Step,
)

KIND_NAV = "nav"
KIND_PRED = "pred"


class PredicateSpec:
    """Static description of one predicate chain within an automaton.

    ``start`` is the state a predicate token is spawned at; ``final`` is
    the chain's accepting state; ``comparison`` (if any) must hold on the
    text of the element whose open event reached ``final``.
    """

    __slots__ = ("spec_id", "start", "final", "comparison", "required_labels")

    def __init__(
        self,
        spec_id: int,
        start: int,
        final: int,
        comparison: Optional[Comparison],
        required_labels: frozenset,
    ):
        self.spec_id = spec_id
        self.start = start
        self.final = final
        self.comparison = comparison
        self.required_labels = required_labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PredicateSpec(#%d, %d->%d)" % (self.spec_id, self.start, self.final)


class AutomatonState:
    """One NFA state.

    ``transitions`` maps an edge label (tag or ``*``) to target state
    ids.  ``self_loop`` encodes the paper's ``*`` self-transition for the
    descendant axis.  ``anchors`` lists the :class:`PredicateSpec` whose
    instances must be spawned when a token *enters* this state.
    """

    __slots__ = (
        "state_id",
        "kind",
        "transitions",
        "self_loop",
        "is_final",
        "comparison",
        "anchors",
        "remaining_labels",
    )

    def __init__(self, state_id: int, kind: str):
        self.state_id = state_id
        self.kind = kind
        self.transitions: Dict[str, List[int]] = {}
        self.self_loop = False
        self.is_final = False
        self.comparison: Optional[Comparison] = None
        self.anchors: List[PredicateSpec] = []
        self.remaining_labels: frozenset = frozenset()

    def add_transition(self, label: str, target: int) -> None:
        self.transitions.setdefault(label, []).append(target)

    def targets(self, tag: str) -> List[int]:
        """Target states for an open event with ``tag`` (self-loop excluded)."""
        result = self.transitions.get(tag, [])
        wildcard = self.transitions.get(WILDCARD)
        if wildcard:
            result = result + wildcard
        return result

    def has_moves(self) -> bool:
        """True if any transition (or self-loop) leaves this state."""
        return bool(self.transitions) or self.self_loop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.self_loop:
            flags.append("loop")
        if self.is_final:
            flags.append("final")
        return "State(%d,%s%s)" % (
            self.state_id,
            self.kind,
            "," + ",".join(flags) if flags else "",
        )


class Automaton:
    """A compiled ARA: states, the initial state and the navigational
    final state, plus the list of all predicate specs (chains)."""

    def __init__(self, path: Path):
        self.path = path
        self.states: List[AutomatonState] = []
        self.initial = self._new_state(KIND_NAV)
        self.nav_final: int = -1
        self.predicate_specs: List[PredicateSpec] = []

    # ------------------------------------------------------------------
    def _new_state(self, kind: str) -> int:
        state = AutomatonState(len(self.states), kind)
        self.states.append(state)
        return state.state_id

    def state(self, state_id: int) -> AutomatonState:
        return self.states[state_id]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable dump, for debugging and documentation."""
        lines = ["Automaton(%s)" % self.path]
        for state in self.states:
            parts = []
            if state.self_loop:
                parts.append("*->self")
            for label, targets in sorted(state.transitions.items()):
                for target in targets:
                    parts.append("%s->%d" % (label, target))
            suffix = " FINAL" if state.is_final else ""
            if state.comparison is not None:
                suffix += " cmp(%s)" % state.comparison
            if state.anchors:
                suffix += " anchors[%s]" % ",".join(
                    str(spec.spec_id) for spec in state.anchors
                )
            lines.append(
                "  s%d(%s): %s%s"
                % (state.state_id, state.kind, " ".join(parts), suffix)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Automaton(%r, %d states)" % (str(self.path), len(self.states))


#: Process-wide count of :func:`compile_path` invocations.  The engine
#: layer's plan cache exists to keep this flat under load; the counter
#: lets tests and benchmarks assert that it actually does
#: (see ``benchmarks/test_engine_cache.py``).
_compile_calls = 0


def compile_calls() -> int:
    """Total number of automaton compilations so far in this process."""
    return _compile_calls


def compile_path(path: Path) -> Automaton:
    """Compile an absolute path into an :class:`Automaton`."""
    global _compile_calls
    _compile_calls += 1
    automaton = Automaton(path)
    final = _compile_chain(automaton, automaton.initial, path.steps, KIND_NAV)
    automaton.state(final).is_final = True
    automaton.nav_final = final
    _compute_remaining_labels(automaton)
    return automaton


def _compile_chain(
    automaton: Automaton,
    source: int,
    steps: Sequence[Step],
    kind: str,
) -> int:
    """Compile a linear chain of steps starting at ``source``.

    Returns the id of the chain's last state.  Predicates on each step
    are compiled into anchored predicate chains.
    """
    current = source
    for step in steps:
        if step.is_self():
            # `[. op lit]` — the anchor element itself is the witness.
            # No transition: the chain's start *is* its final state.
            continue
        if step.axis == AXIS_DESCENDANT:
            automaton.state(current).self_loop = True
        nxt = automaton._new_state(kind)
        automaton.state(current).add_transition(step.test, nxt)
        current = nxt
        for predicate in step.predicates:
            _compile_predicate(automaton, current, predicate)
    return current


def _compile_predicate(
    automaton: Automaton, anchor: int, predicate: Predicate
) -> PredicateSpec:
    start = automaton._new_state(KIND_PRED)
    final = _compile_chain(automaton, start, predicate.path.steps, KIND_PRED)
    state = automaton.state(final)
    state.is_final = True
    state.comparison = predicate.comparison
    spec = PredicateSpec(
        len(automaton.predicate_specs),
        start,
        final,
        predicate.comparison,
        predicate.path.required_labels(),
    )
    automaton.predicate_specs.append(spec)
    automaton.state(anchor).anchors.append(spec)
    return spec


def _compute_remaining_labels(automaton: Automaton) -> None:
    """Fill ``remaining_labels`` for every state.

    ``remaining_labels(s)`` is the set of concrete tags that must all
    appear strictly below the current element for a token at ``s`` to
    contribute to an *active* rule instance: the non-wildcard tests on
    the path from ``s`` to its chain's final state, plus the required
    labels of every predicate anchored on those future states.  A token
    whose remaining labels are not a subset of the current element's
    descendant-tag set can never fire and is discarded (Section 4.2).
    """
    # The automaton is a DAG of linear chains; propagate backwards.
    order = _reverse_topological(automaton)
    for state_id in order:
        state = automaton.state(state_id)
        labels = set()
        for label, targets in state.transitions.items():
            for target in targets:
                if target == state_id:
                    continue
                target_state = automaton.state(target)
                # Only follow edges within the same chain kind; predicate
                # chains have their own remaining-labels universe.
                if target_state.kind != state.kind:
                    continue
                if label != WILDCARD:
                    labels.add(label)
                labels |= target_state.remaining_labels
                for spec in target_state.anchors:
                    labels |= spec.required_labels
        state.remaining_labels = frozenset(labels)


def _reverse_topological(automaton: Automaton) -> List[int]:
    """States ordered so that every transition target precedes its source.

    Chains are linear and acyclic apart from self-loops, so a DFS
    post-order works.
    """
    visited = [False] * len(automaton.states)
    order: List[int] = []

    def visit(state_id: int) -> None:
        if visited[state_id]:
            return
        visited[state_id] = True
        state = automaton.states[state_id]
        for targets in state.transitions.values():
            for target in targets:
                if target != state_id:
                    visit(target)
        order.append(state_id)

    for state in automaton.states:
        visit(state.state_id)
    return order
